"""deltaBlue — incremental constraint solver (Table 6 row 5).

Plan execution walks constraint chains (carried dependences through the
variable values) while strength updates and satisfaction scans are
per-constraint parallel work — the mix of small STLs the paper reports
(82 threads/entry at ~500 cycles).
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Chain-of-constraints solver: plan execution + strength maintenance.
func main() {
  var nvars = 60;
  var value = array(nvars);
  var strength = array(nvars);
  var stay = array(nvars);
  var delta = array(nvars);
  var seed = 17;
  for (var i = 0; i < nvars; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    value[i] = (seed >> 6) % 100;
    strength[i] = (seed >> 3) % 8;
    stay[i] = (seed >> 10) % 2;
    delta[i] = (seed >> 5) % 9 - 4;
  }
  var checksum = 0;
  for (var edit = 0; edit < 25; edit = edit + 1) {
    // plan execution: propagate the edit down the chain (serial)
    value[0] = edit * 3;
    for (var c = 1; c < nvars; c = c + 1) {
      if (stay[c] == 0) {
        value[c] = value[c - 1] + delta[c];
      }
    }
    // constraint satisfaction scan (parallel over constraints)
    var unsatisfied = 0;
    for (var c2 = 1; c2 < nvars; c2 = c2 + 1) {
      var want = value[c2 - 1] + delta[c2];
      if (stay[c2] == 0 && value[c2] != want) {
        unsatisfied = unsatisfied + 1;
      }
    }
    // strength decay / renewal (parallel, independent per constraint)
    for (var c3 = 0; c3 < nvars; c3 = c3 + 1) {
      var s = strength[c3];
      s = (s * 5 + c3) % 8;
      strength[c3] = s;
      if (s == 0) { stay[c3] = 1 - stay[c3]; }
    }
    checksum = (checksum + value[nvars - 1] + unsatisfied) % 1000003;
  }
  return checksum;
}
"""

WORKLOAD = register(Workload(
    name="deltaBlue",
    category=INTEGER,
    description="Constraint solver",
    source_text=SOURCE,
))
