"""NumHeapSort — heap sort (Table 6 row 13).

Sift-down walks create distant, data-dependent array dependences; the
paper highlights NumHeapSort (with Huffman, db, MipsSimulator) as a
benchmark whose thread sizes and arc lengths vary wildly yet whose best
decomposition TEST still identifies.
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Standard binary-heap sort over a pseudo-random array.
func sift_down(a, start, end) {
  var root = start;
  var going = 1;
  while (going == 1 && root * 2 + 1 <= end) {
    var child = root * 2 + 1;
    if (child + 1 <= end && a[child] < a[child + 1]) {
      child = child + 1;
    }
    if (a[root] < a[child]) {
      var t = a[root];
      a[root] = a[child];
      a[child] = t;
      root = child;
    } else {
      going = 0;
    }
  }
}

func main() {
  var n = 700;
  var a = array(n);
  var seed = 13;
  for (var i = 0; i < n; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    a[i] = (seed >> 7) % 100000;
  }

  // heapify: independent sub-heaps at first, converging toward the root
  for (var start = n / 2 - 1; start >= 0; start = start - 1) {
    sift_down(a, start, n - 1);
  }
  // extraction: strictly serial root swaps
  for (var end = n - 1; end > 0; end = end - 1) {
    var t = a[0];
    a[0] = a[end];
    a[end] = t;
    sift_down(a, 0, end - 1);
  }

  // verify + checksum (parallel scan)
  var sorted = 1;
  var checksum = 0;
  for (var k = 1; k < n; k = k + 1) {
    if (a[k - 1] > a[k]) { sorted = 0; }
    checksum = (checksum + a[k] * k) % 1000003;
  }
  return checksum * 10 + sorted;
}
"""

WORKLOAD = register(Workload(
    name="NumHeapSort",
    category=INTEGER,
    description="Heap sort",
    source_text=SOURCE,
))
