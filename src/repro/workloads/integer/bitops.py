"""BitOps — jBYTEmark bit-array operations (Table 6 row 2).

Flat, shallow loop structure (the paper counts just 4 loops at depth 2)
with very high trip counts and tiny iterations (paper: 7646
threads/entry at 29 cycles).
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Bit-array set / clear / population-count sweeps.
func main() {
  var nwords = 192;
  var bits = array(nwords);
  var seed = 99;
  var checksum = 0;
  for (var op = 0; op < 140; op = op + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    var start = seed % (nwords * 32 - 64);
    var span = 1 + (seed >> 8) % 48;
    if (op % 6 == 5) {
      // population count over the whole array
      var cnt = 0;
      for (var w = 0; w < nwords; w = w + 1) {
        var v = bits[w];
        while (v != 0) {
          v = v & (v - 1);
          cnt = cnt + 1;
        }
      }
      checksum = checksum + cnt;
    } else if (op % 2 == 0) {
      for (var b = start; b < start + span; b = b + 1) {
        bits[b / 32] = bits[b / 32] | (1 << (b % 32));
      }
    } else {
      for (var b2 = start; b2 < start + span; b2 = b2 + 1) {
        bits[b2 / 32] = bits[b2 / 32] & ~(1 << (b2 % 32));
      }
    }
  }
  return checksum;
}
"""

WORKLOAD = register(Workload(
    name="BitOps",
    category=INTEGER,
    description="Bit array operations",
    source_text=SOURCE,
))
