"""The paper's 26 benchmarks (Table 6) as minijava workloads.

Import :mod:`repro.workloads.registry` and use
:func:`~repro.workloads.registry.all_workloads` /
:func:`~repro.workloads.registry.get_workload`.
"""

from repro.workloads.registry import (
    FLOATING,
    INTEGER,
    MULTIMEDIA,
    Workload,
    all_workloads,
    by_category,
    get_workload,
    workload_names,
)

__all__ = [
    "FLOATING",
    "INTEGER",
    "MULTIMEDIA",
    "Workload",
    "all_workloads",
    "by_category",
    "get_workload",
    "workload_names",
]
