"""The paper's 26 benchmarks (Table 6) as minijava workloads.

Import :mod:`repro.workloads.registry` and use
:func:`~repro.workloads.registry.all_workloads` /
:func:`~repro.workloads.registry.get_workload`.
"""

from repro.workloads.registry import (
    FLOATING,
    INTEGER,
    MULTIMEDIA,
    SYNTHETIC,
    Workload,
    all_workloads,
    by_category,
    get_workload,
    register_family,
    reset_synthetic,
    unregister_family,
    workload_names,
)

__all__ = [
    "FLOATING",
    "INTEGER",
    "MULTIMEDIA",
    "SYNTHETIC",
    "Workload",
    "all_workloads",
    "by_category",
    "get_workload",
    "register_family",
    "reset_synthetic",
    "unregister_family",
    "workload_names",
]
