"""Natural-loop identification and the loop-nesting forest.

"The compiler chooses potential STLs by examining a method's
control-flow graph to identify all natural loops" (Section 4.1).  A back
edge is ``n -> h`` with ``h`` dominating ``n``; the natural loop of a
back edge is ``h`` plus every block that reaches ``n`` without passing
through ``h``.  Loops sharing a header are merged (Muchnick's
convention), and nesting is derived from block-set containment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.dominators import DominatorTree, compute_dominators
from repro.cfg.graph import CFG


class Loop:
    """One natural loop within a function's CFG."""

    def __init__(self, header: int, blocks: Set[int],
                 back_edge_sources: Set[int]):
        self.header = header
        self.blocks = blocks
        self.back_edge_sources = back_edge_sources
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        #: 1-based nesting depth (1 = outermost in this function)
        self.depth = 1
        #: program-wide id, assigned by the candidate pass
        self.loop_id = -1

    def entry_edges(self, cfg: CFG) -> List[Tuple[int, int]]:
        """Edges from outside the loop into the header."""
        preds = cfg.predecessors_map()
        return [(p, self.header) for p in preds[self.header]
                if p not in self.blocks]

    def back_edges(self) -> List[Tuple[int, int]]:
        """The latch edges (source -> header)."""
        return [(src, self.header) for src in sorted(self.back_edge_sources)]

    def exit_edges(self, cfg: CFG) -> List[Tuple[int, int]]:
        """Edges from a loop block to a non-loop block."""
        out: List[Tuple[int, int]] = []
        for bid in sorted(self.blocks):
            for succ in cfg.successors(bid):
                if succ not in self.blocks:
                    out.append((bid, succ))
        return out

    def height(self) -> int:
        """Height above the innermost loop nested below this one
        (0 = innermost; the paper's Table 6 column f reports 1-based
        heights, see :meth:`height1`)."""
        if not self.children:
            return 0
        return 1 + max(child.height() for child in self.children)

    def height1(self) -> int:
        """1-based loop height as reported in Table 6 (inner loop = 1)."""
        return self.height() + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Loop L%d header=%d blocks=%d depth=%d>" % (
            self.loop_id, self.header, len(self.blocks), self.depth)


class LoopForest:
    """All natural loops of one function, with nesting structure."""

    def __init__(self, cfg: CFG, loops: List[Loop]):
        self.cfg = cfg
        self.loops = loops
        self.by_header: Dict[int, Loop] = {lp.header: lp for lp in loops}
        self.roots = [lp for lp in loops if lp.parent is None]

    @property
    def max_depth(self) -> int:
        """Deepest static nesting (0 when there are no loops)."""
        return max((lp.depth for lp in self.loops), default=0)

    def loop_of_block(self, bid: int) -> Optional[Loop]:
        """The innermost loop containing ``bid``, if any."""
        best: Optional[Loop] = None
        for lp in self.loops:
            if bid in lp.blocks:
                if best is None or lp.depth > best.depth:
                    best = lp
        return best


def _natural_loop_blocks(cfg: CFG, header: int, latch: int) -> Set[int]:
    """Blocks of the natural loop of back edge latch -> header."""
    preds = cfg.predecessors_map()
    blocks = {header, latch}
    work = [latch]
    while work:
        bid = work.pop()
        if bid == header:
            continue
        for p in preds[bid]:
            if p not in blocks:
                blocks.add(p)
                work.append(p)
    return blocks


def find_loops(cfg: CFG, dom: Optional[DominatorTree] = None) -> LoopForest:
    """Identify all natural loops in ``cfg`` and build the forest."""
    if dom is None:
        dom = compute_dominators(cfg)
    reachable = set(dom.idom)

    # back edges: n -> h with h dominating n
    by_header: Dict[int, Loop] = {}
    for n in sorted(reachable):
        for h in cfg.successors(n):
            if h in reachable and dom.dominates(h, n):
                blocks = _natural_loop_blocks(cfg, h, n)
                existing = by_header.get(h)
                if existing is None:
                    by_header[h] = Loop(h, blocks, {n})
                else:
                    existing.blocks |= blocks
                    existing.back_edge_sources.add(n)

    loops = sorted(by_header.values(), key=lambda lp: lp.header)

    # nesting: the parent of L is the smallest strictly-containing loop
    for inner in loops:
        parent: Optional[Loop] = None
        for outer in loops:
            if outer is inner:
                continue
            if inner.header in outer.blocks \
                    and inner.blocks <= outer.blocks \
                    and inner.blocks != outer.blocks:
                if parent is None or len(outer.blocks) < len(parent.blocks):
                    parent = outer
        inner.parent = parent
        if parent is not None:
            parent.children.append(inner)

    # depths
    def set_depth(lp: Loop, depth: int) -> None:
        lp.depth = depth
        for child in lp.children:
            set_depth(child, depth + 1)

    for lp in loops:
        if lp.parent is None:
            set_depth(lp, 1)

    return LoopForest(cfg, loops)
