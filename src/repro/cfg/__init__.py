"""Control-flow analysis substrate: CFGs, dominators, natural loops,
scalar loop-carried dependence classification, and STL candidate
identification (Section 4.1 of the paper)."""

from repro.cfg.candidates import (
    CandidateTable,
    FunctionLoops,
    STLCandidate,
    find_candidates,
)
from repro.cfg.dominators import DominatorTree, compute_dominators
from repro.cfg.graph import CFG, Block, build_cfg
from repro.cfg.natural_loops import Loop, LoopForest, find_loops
from repro.cfg.scalar_deps import DepClass, LoopScalarInfo, analyze_loop

__all__ = [
    "Block",
    "CFG",
    "CandidateTable",
    "DepClass",
    "DominatorTree",
    "FunctionLoops",
    "Loop",
    "LoopForest",
    "LoopScalarInfo",
    "STLCandidate",
    "analyze_loop",
    "build_cfg",
    "compute_dominators",
    "find_candidates",
    "find_loops",
]
