"""Identification of potential speculative thread loops (STLs).

Implements Section 4.1 of the paper: every natural loop in every
function is a potential STL unless scalar analysis finds an obvious
whole-body recurrence that would completely eliminate speedup.  Loop
inductors and transformable reductions are ignored when deciding
candidacy (the speculative compiler eliminates them).

The pass assigns program-wide loop ids; these ids flow through the
annotating JIT into ``SLOOP``/``EOI``/``ELOOP`` instructions and key all
TEST statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.bytecode.program import Program
from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import CFG, build_cfg
from repro.cfg.natural_loops import Loop, LoopForest, find_loops
from repro.cfg.scalar_deps import DepClass, LoopScalarInfo, analyze_loop


class STLCandidate:
    """One potential STL with its static facts."""

    def __init__(self, loop_id: int, function: str, loop: Loop,
                 scalar: LoopScalarInfo, excluded: bool, reason: str):
        self.loop_id = loop_id
        self.function = function
        self.loop = loop
        self.scalar = scalar
        #: statically excluded (still assigned an id, never annotated)
        self.excluded = excluded
        self.exclusion_reason = reason
        #: named slots tracked by lwl/swl for this loop: only locals both
        #: read and written inside the loop can form its dependency arcs,
        #: and inductors/reductions are ignored because the speculative
        #: compiler eliminates them (Section 4.1)
        eliminable = set(scalar.inductors) | set(scalar.reductions)
        self.tracked_locals = sorted(
            s for s, c in scalar.classes.items()
            if c is not DepClass.NONE and s not in eliminable)
        #: parent candidate's loop id, or -1 for a top-level loop
        self.parent_id = -1
        #: child candidate loop ids (immediate nesting)
        self.child_ids: List[int] = []

    @property
    def depth(self) -> int:
        """Static nesting depth (1 = outermost loop of the function)."""
        return self.loop.depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " EXCLUDED" if self.excluded else ""
        return "<STLCandidate L%d %s depth=%d%s>" % (
            self.loop_id, self.function, self.depth, flag)


class FunctionLoops:
    """CFG + loop forest + candidates for one function."""

    def __init__(self, function: str, cfg: CFG, forest: LoopForest,
                 candidates: List[STLCandidate]):
        self.function = function
        self.cfg = cfg
        self.forest = forest
        self.candidates = candidates


class CandidateTable:
    """Program-wide candidate STL inventory (Table 6 statics)."""

    def __init__(self, program: Program):
        self.program = program
        self.by_function: Dict[str, FunctionLoops] = {}
        self.by_id: Dict[int, STLCandidate] = {}

    # -- statistics for Table 6 ------------------------------------------

    @property
    def loop_count(self) -> int:
        """Total natural loops in the program (Table 6 column c)."""
        return sum(len(f.forest.loops) for f in self.by_function.values())

    @property
    def max_loop_depth(self) -> int:
        """Max static nest depth within one function.  Table 6 column d
        reports the deepest *executed* nest including calls; the dynamic
        value is measured by the tracer, this is the static floor."""
        return max((f.forest.max_depth
                    for f in self.by_function.values()), default=0)

    def candidates(self, include_excluded: bool = False
                   ) -> List[STLCandidate]:
        """All candidates in loop-id order."""
        out = [self.by_id[i] for i in sorted(self.by_id)]
        if not include_excluded:
            out = [c for c in out if not c.excluded]
        return out

    def candidate(self, loop_id: int) -> STLCandidate:
        return self.by_id[loop_id]

    def function_of(self, loop_id: int) -> str:
        return self.by_id[loop_id].function


def find_candidates(program: Program,
                    functions: Optional[Iterable[str]] = None
                    ) -> CandidateTable:
    """Build the candidate table for ``program``.

    ``functions`` optionally restricts analysis (defaults to all).
    Loop ids are assigned deterministically: functions in sorted name
    order (entry first), loops by header block id.
    """
    table = CandidateTable(program)
    names = list(functions) if functions is not None \
        else sorted(program.functions)
    if program.entry in names:
        names.remove(program.entry)
        names.insert(0, program.entry)

    next_id = 0
    for name in names:
        fn = program.functions[name]
        cfg = build_cfg(fn)
        dom = compute_dominators(cfg)
        forest = find_loops(cfg, dom)
        candidates: List[STLCandidate] = []
        id_of_loop: Dict[int, int] = {}
        for loop in forest.loops:
            scalar = analyze_loop(cfg, loop, fn.n_named, dom)
            excluded = scalar.serializing
            reason = "whole-body scalar recurrence" if excluded else ""
            cand = STLCandidate(next_id, name, loop, scalar,
                                excluded, reason)
            loop.loop_id = next_id
            id_of_loop[loop.header] = next_id
            candidates.append(cand)
            table.by_id[next_id] = cand
            next_id += 1
        # wire the nesting between candidates
        for cand in candidates:
            parent = cand.loop.parent
            if parent is not None:
                cand.parent_id = id_of_loop[parent.header]
                table.by_id[cand.parent_id].child_ids.append(cand.loop_id)
        table.by_function[name] = FunctionLoops(name, cfg, forest,
                                                candidates)
    return table
