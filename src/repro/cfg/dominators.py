"""Dominator computation (Cooper–Harvey–Kennedy).

Natural-loop identification (Section 4.1 of the paper cites Muchnick's
textbook definition) needs dominators: a back edge is an edge ``n -> h``
where ``h`` dominates ``n``.  We use the simple-and-fast iterative
algorithm of Cooper, Harvey and Kennedy over reverse postorder.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cfg.graph import CFG


class DominatorTree:
    """Immediate-dominator map plus convenience queries."""

    def __init__(self, idom: Dict[int, Optional[int]], rpo: List[int]):
        self.idom = idom
        self._rpo_index = {bid: i for i, bid in enumerate(rpo)}

    def dominates(self, a: int, b: int) -> bool:
        """Whether ``a`` dominates ``b`` (every node dominates itself)."""
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom[node]
        return False

    def dominators_of(self, b: int) -> List[int]:
        """All dominators of ``b``, innermost (``b`` itself) first."""
        out: List[int] = []
        node: Optional[int] = b
        while node is not None:
            out.append(node)
            node = self.idom[node]
        return out

    def depth(self, b: int) -> int:
        """Distance from the entry in the dominator tree."""
        return len(self.dominators_of(b)) - 1


def compute_dominators(cfg: CFG) -> DominatorTree:
    """Compute the dominator tree of the reachable part of ``cfg``."""
    rpo = cfg.reverse_postorder()
    index = {bid: i for i, bid in enumerate(rpo)}
    preds_all = cfg.predecessors_map()
    # only reachable predecessors participate
    preds = {bid: [p for p in preds_all[bid] if p in index] for bid in rpo}

    idom: Dict[int, Optional[int]] = {bid: None for bid in rpo}
    entry = cfg.entry
    idom[entry] = entry

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for bid in rpo:
            if bid == entry:
                continue
            new_idom: Optional[int] = None
            for p in preds[bid]:
                if idom[p] is None:
                    continue
                new_idom = p if new_idom is None \
                    else intersect(p, new_idom)
            if new_idom is not None and idom[bid] != new_idom:
                idom[bid] = new_idom
                changed = True

    idom[entry] = None  # canonical form: the entry has no idom
    return DominatorTree(idom, rpo)
