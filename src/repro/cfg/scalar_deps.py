"""Scalar analysis of loop-carried local-variable dependencies.

Section 4.1: "Loops are chosen optimistically... Loop inductors, which
are dependencies that can be eliminated by the compiler, are ignored so
that potentially parallel loops are not overlooked.  Scalar analysis is
used to identify simple dependencies, but we forgo advanced techniques."

This module classifies, for every (loop, named local slot) pair:

* ``INDUCTOR`` — a single ``x = x ± const`` update (the compiler turns
  these into non-violating loop inductors);
* ``REDUCTION`` — a single ``x = x + e`` / ``x = x * e`` /
  ``x = min/max(x, e)`` accumulation (Table 2: completed at shutdown);
* ``CARRIED`` — some other loop-carried scalar dependence (an
  upward-exposed read plus a write inside the loop);
* ``NONE`` — no loop-carried dependence through this local.

It also flags the rare *serializing* pattern the paper excludes
statically: a single-block loop whose only work is a whole-body
recurrence on one local (e.g. a bare pointer chase ``x = a[x]``).
Everything else stays a candidate — TEST measures the real arcs.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Tuple

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import BinOp, Op
from repro.cfg.graph import CFG
from repro.cfg.natural_loops import Loop


class DepClass(enum.Enum):
    """Classification of a local's loop-carried behaviour in a loop."""

    NONE = "none"
    INDUCTOR = "inductor"
    REDUCTION = "reduction"
    CARRIED = "carried"


def _writes_of(ins: Instr) -> Optional[int]:
    """The slot ``ins`` writes, or None."""
    op = ins.op
    if op in (Op.CONST, Op.MOV, Op.BIN, Op.UN, Op.NEWARR, Op.ALOAD,
              Op.LEN, Op.INTRIN):
        return ins.a
    if op == Op.CALL and ins.a >= 0:
        return ins.a
    return None


def _reads_of(ins: Instr) -> List[int]:
    """The slots ``ins`` reads."""
    op = ins.op
    if op == Op.MOV:
        return [ins.b]
    if op == Op.BIN:
        return [ins.b, ins.c]
    if op == Op.UN:
        return [ins.b]
    if op == Op.NEWARR:
        return [ins.b]
    if op == Op.ALOAD:
        return [ins.b, ins.c]
    if op == Op.ASTORE:
        return [ins.a, ins.b, ins.c]
    if op == Op.LEN:
        return [ins.b]
    if op == Op.BR:
        return [ins.a]
    if op == Op.RET:
        return [ins.a] if ins.a >= 0 else []
    if op in (Op.CALL, Op.INTRIN):
        return list(ins.args)
    if op == Op.PRINT:
        return [ins.a]
    return []


class LoopScalarInfo:
    """Per-loop scalar facts used by candidates, annotation, and the
    speculative compiler."""

    def __init__(self, loop: Loop,
                 accessed: Set[int],
                 classes: Dict[int, DepClass],
                 serializing: bool):
        self.loop = loop
        #: named slots read or written anywhere in the loop
        self.accessed = accessed
        #: DepClass per accessed slot
        self.classes = classes
        self.serializing = serializing

    def slots_of(self, dep_class: DepClass) -> List[int]:
        """Accessed slots with the given classification, sorted."""
        return sorted(s for s, c in self.classes.items() if c is dep_class)

    @property
    def inductors(self) -> List[int]:
        return self.slots_of(DepClass.INDUCTOR)

    @property
    def reductions(self) -> List[int]:
        return self.slots_of(DepClass.REDUCTION)

    @property
    def carried(self) -> List[int]:
        return self.slots_of(DepClass.CARRIED)


def _const_defined_slots(instrs: List[Instr]) -> Set[int]:
    """Slots assigned only by CONST instructions within ``instrs``."""
    const_slots: Set[int] = set()
    dirty: Set[int] = set()
    for ins in instrs:
        w = _writes_of(ins)
        if w is None:
            continue
        if ins.op == Op.CONST:
            if w not in dirty:
                const_slots.add(w)
        else:
            const_slots.discard(w)
            dirty.add(w)
    return const_slots


def analyze_loop(cfg: CFG, loop: Loop, n_named: int,
                 dom=None) -> LoopScalarInfo:
    """Classify every named local accessed inside ``loop``.

    ``dom`` (a :class:`~repro.cfg.dominators.DominatorTree`) enables the
    precise inductor test: an update only qualifies if it executes
    exactly once per iteration — its block dominates every latch and
    lies in no nested loop.  Without ``dom`` the test degrades to the
    once-per-iteration blocks being unknown, so only single-block loops
    recognize inductors (tests exercise both paths).
    """
    loop_instrs: List[Instr] = []
    block_instrs: Dict[int, List[Instr]] = {}
    for bid in sorted(loop.blocks):
        instrs = cfg.blocks[bid].instrs
        block_instrs[bid] = instrs
        loop_instrs.extend(instrs)

    accessed: Set[int] = set()
    defs: Dict[int, List[Instr]] = {}
    def_blocks: Dict[int, Set[int]] = {}
    read_outside_def: Set[int] = set()
    upward_use: Set[int] = set()

    for bid, instrs in block_instrs.items():
        written_here: Set[int] = set()
        for ins in instrs:
            w = _writes_of(ins)
            for r in _reads_of(ins):
                if r < n_named:
                    accessed.add(r)
                    if r not in written_here:
                        upward_use.add(r)
                    if r != w:
                        read_outside_def.add(r)
            if w is not None and w < n_named:
                accessed.add(w)
                written_here.add(w)
                defs.setdefault(w, []).append(ins)
                def_blocks.setdefault(w, set()).add(bid)

    const_slots = _const_defined_slots(loop_instrs)

    # blocks belonging to a loop nested inside this one
    nested_blocks: Set[int] = set()
    for child in loop.children:
        nested_blocks |= child.blocks

    def executes_once_per_iteration(bid: int) -> bool:
        if bid in nested_blocks:
            return False
        if dom is None:
            return bid == loop.header
        return all(dom.dominates(bid, latch)
                   for latch in loop.back_edge_sources)

    classes: Dict[int, DepClass] = {}
    for slot in accessed:
        slot_defs = defs.get(slot, [])
        if not slot_defs or slot not in upward_use:
            classes[slot] = DepClass.NONE
            continue
        blocks = def_blocks.get(slot, set())
        once = all(executes_once_per_iteration(b) for b in blocks)
        if len(slot_defs) == 1 and once and _is_inductor_def(
                slot_defs[0], slot, const_slots):
            classes[slot] = DepClass.INDUCTOR
        elif all(_is_reduction_def(d, slot) for d in slot_defs) \
                and slot not in read_outside_def:
            classes[slot] = DepClass.REDUCTION
        else:
            classes[slot] = DepClass.CARRIED

    serializing = _is_serializing(cfg, loop, block_instrs, classes, n_named)
    return LoopScalarInfo(loop, accessed, classes, serializing)


def _is_inductor_def(ins: Instr, slot: int, const_slots: Set[int]) -> bool:
    """``slot = slot ± const``."""
    if ins.op != Op.BIN:
        return False
    if ins.sub == BinOp.ADD:
        if ins.b == slot and ins.c in const_slots:
            return True
        if ins.c == slot and ins.b in const_slots:
            return True
        return False
    if ins.sub == BinOp.SUB:
        return ins.b == slot and ins.c in const_slots
    return False


def _is_reduction_def(ins: Instr, slot: int) -> bool:
    """``slot = slot + e``, ``slot = slot - e``, ``slot = slot * e``,
    or ``slot = min/max(slot, e)``."""
    if ins.op == Op.BIN:
        if ins.sub in (BinOp.ADD, BinOp.MUL):
            return ins.b == slot or ins.c == slot
        if ins.sub == BinOp.SUB:
            return ins.b == slot
        return False
    if ins.op == Op.INTRIN and ins.name in ("min", "max"):
        return slot in ins.args
    return False


def _is_serializing(cfg: CFG, loop: Loop,
                    block_instrs: Dict[int, List[Instr]],
                    classes: Dict[int, DepClass],
                    n_named: int) -> bool:
    """The bare whole-body recurrence pattern (see module docstring).

    Only single-body-block loops qualify, and only when a CARRIED local's
    first touch is an upward-exposed read near the top and its last
    definition sits near the bottom, spanning essentially the whole
    iteration (arc length ~ thread size => no speculation win possible).
    """
    carried = [s for s, c in classes.items() if c is DepClass.CARRIED]
    if not carried:
        return False
    body_blocks = [bid for bid in loop.blocks]
    if len(body_blocks) > 2:   # header + at most one latch block
        return False
    instrs: List[Instr] = []
    for bid in sorted(body_blocks):
        instrs.extend(block_instrs[bid])
    useful = [i for i in instrs
              if i.op not in (Op.JMP, Op.BR, Op.NOP)]
    if not useful:
        return False
    for slot in carried:
        first_read = None
        last_def = None
        for idx, ins in enumerate(useful):
            if first_read is None and slot in _reads_of(ins):
                first_read = idx
            if _writes_of(ins) == slot:
                last_def = idx
        if first_read is None or last_def is None:
            continue
        if first_read > last_def:
            continue  # read after def: not upward-spanning here
        span = last_def - first_read + 1
        if span >= 0.75 * len(useful):
            return True  # one whole-body recurrence serializes the loop
    return False
