"""Control-flow graphs over bytecode functions.

The Jrpm compiler "derives a control-flow graph from program bytecodes
and analyzes it to identify potential STLs" (Section 3).  This module
builds that CFG, supports the edge-splitting mutations the annotating
JIT needs (inserting ``SLOOP``/``EOI``/``ELOOP`` blocks on loop entry,
back, and exit edges), and linearizes a mutated CFG back into a flat
instruction list.

Because every block in our codegen ends with an explicit terminator
(``JMP``/``BR``/``RET`` — there is no implicit fallthrough), linearization
is order-independent: blocks are concatenated and branch targets
rewritten to block start pcs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op
from repro.bytecode.program import Function
from repro.errors import BytecodeError


class Block:
    """A basic block: a non-empty instruction list ending in a terminator."""

    __slots__ = ("bid", "instrs")

    def __init__(self, bid: int, instrs: List[Instr]):
        self.bid = bid
        self.instrs = instrs

    @property
    def terminator(self) -> Instr:
        return self.instrs[-1]

    def successor_ids_raw(self) -> List[int]:
        """Branch targets encoded in the terminator (as block ids once the
        CFG has rewritten them — see :class:`CFG`)."""
        term = self.terminator
        if term.op == Op.JMP:
            return [term.a]
        if term.op == Op.BR:
            if term.b == term.c:
                return [term.b]
            return [term.b, term.c]
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Block %d: %d instrs>" % (self.bid, len(self.instrs))


class CFG:
    """A mutable control-flow graph for one function.

    Inside the CFG, ``JMP``/``BR`` targets hold **block ids**, not pcs;
    :meth:`linearize` converts back.  Successor order of a ``BR`` is
    (taken, not-taken).
    """

    def __init__(self, name: str, blocks: Dict[int, Block], entry: int,
                 template: Function):
        self.name = name
        self.blocks = blocks
        self.entry = entry
        self._template = template
        self._next_bid = max(blocks) + 1 if blocks else 0

    # -- queries ---------------------------------------------------------

    def successors(self, bid: int) -> List[int]:
        """Successor block ids, in terminator order."""
        return self.blocks[bid].successor_ids_raw()

    def predecessors_map(self) -> Dict[int, List[int]]:
        """Map block id -> predecessor ids (recomputed on each call)."""
        preds: Dict[int, List[int]] = {bid: [] for bid in self.blocks}
        for bid in self.blocks:
            for succ in self.successors(bid):
                preds[succ].append(bid)
        return preds

    def reachable(self) -> Set[int]:
        """Blocks reachable from the entry."""
        seen: Set[int] = set()
        work = [self.entry]
        while work:
            bid = work.pop()
            if bid in seen:
                continue
            seen.add(bid)
            work.extend(self.successors(bid))
        return seen

    def reverse_postorder(self) -> List[int]:
        """Reverse postorder over reachable blocks (entry first)."""
        seen: Set[int] = set()
        post: List[int] = []

        # iterative DFS to avoid recursion limits on long chains
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        succ_cache: Dict[int, List[int]] = {}
        while stack:
            bid, idx = stack[-1]
            succs = succ_cache.get(bid)
            if succs is None:
                succs = self.successors(bid)
                succ_cache[bid] = succs
            if idx < len(succs):
                stack[-1] = (bid, idx + 1)
                nxt = succs[idx]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                post.append(bid)
                stack.pop()
        post.reverse()
        return post

    # -- mutation ----------------------------------------------------------

    def new_block(self, instrs: List[Instr]) -> int:
        """Add a fresh block; returns its id."""
        bid = self._next_bid
        self._next_bid += 1
        self.blocks[bid] = Block(bid, instrs)
        return bid

    def split_edge(self, src: int, dst: int,
                   payload: List[Instr]) -> int:
        """Insert a block containing ``payload`` on the edge src -> dst.

        The payload must not contain a terminator; a ``JMP dst`` is
        appended.  Returns the new block's id.  If ``src`` branches to
        ``dst`` on both arms of a ``BR``, both are redirected.
        """
        for ins in payload:
            if ins.op in (Op.JMP, Op.BR, Op.RET):
                raise BytecodeError(
                    "split_edge payload may not contain terminators")
        mid = self.new_block(list(payload) + [Instr(Op.JMP, a=dst)])
        term = self.blocks[src].terminator
        redirected = False
        if term.op == Op.JMP and term.a == dst:
            term.a = mid
            redirected = True
        elif term.op == Op.BR:
            if term.b == dst:
                term.b = mid
                redirected = True
            if term.c == dst:
                term.c = mid
                redirected = True
        if not redirected:
            raise BytecodeError(
                "no edge %d -> %d to split" % (src, dst))
        return mid

    def insert_before_terminator(self, bid: int,
                                 payload: Iterable[Instr]) -> None:
        """Append ``payload`` just before the block's terminator."""
        block = self.blocks[bid]
        term = block.instrs.pop()
        block.instrs.extend(payload)
        block.instrs.append(term)

    # -- conversion --------------------------------------------------------

    def linearize(self) -> Function:
        """Flatten back to a Function (drops unreachable blocks)."""
        order = self.reverse_postorder()
        start_pc: Dict[int, int] = {}
        pc = 0
        for bid in order:
            start_pc[bid] = pc
            pc += len(self.blocks[bid].instrs)
        fn = Function(self.name, self._template.n_params)
        fn.n_named = self._template.n_named
        fn.slot_names = dict(self._template.slot_names)
        for bid in order:
            for ins in self.blocks[bid].instrs:
                copy = ins.copy()
                if copy.op == Op.JMP:
                    copy.a = start_pc[copy.a]
                elif copy.op == Op.BR:
                    copy.b = start_pc[copy.b]
                    copy.c = start_pc[copy.c]
                fn.code.append(copy)
        return fn


def build_cfg(fn: Function) -> CFG:
    """Partition ``fn`` into basic blocks and build its CFG.

    Leaders: pc 0, every branch target, and every instruction following a
    terminator.  Inside the CFG, branch targets are rewritten from pcs to
    block ids.
    """
    if not fn.code:
        raise BytecodeError("%s: cannot build CFG of empty function"
                            % fn.name)
    leaders: Set[int] = {0}
    for pc, ins in enumerate(fn.code):
        if ins.op == Op.JMP:
            leaders.add(ins.a)
            if pc + 1 < len(fn.code):
                leaders.add(pc + 1)
        elif ins.op == Op.BR:
            leaders.add(ins.b)
            leaders.add(ins.c)
            if pc + 1 < len(fn.code):
                leaders.add(pc + 1)
        elif ins.op == Op.RET:
            if pc + 1 < len(fn.code):
                leaders.add(pc + 1)

    sorted_leaders = sorted(leaders)
    block_of_pc: Dict[int, int] = {}
    spans: List[Tuple[int, int]] = []
    for i, start in enumerate(sorted_leaders):
        end = sorted_leaders[i + 1] if i + 1 < len(sorted_leaders) \
            else len(fn.code)
        spans.append((start, end))
        block_of_pc[start] = i

    blocks: Dict[int, Block] = {}
    for bid, (start, end) in enumerate(spans):
        instrs = [ins.copy() for ins in fn.code[start:end]]
        last = instrs[-1]
        if last.op not in (Op.JMP, Op.BR, Op.RET):
            # block flows into the next leader: make the edge explicit
            instrs.append(Instr(Op.JMP, a=end))
        blocks[bid] = Block(bid, instrs)

    # rewrite branch targets from pcs to block ids
    for block in blocks.values():
        term = block.terminator
        if term.op == Op.JMP:
            term.a = block_of_pc[term.a]
        elif term.op == Op.BR:
            term.b = block_of_pc[term.b]
            term.c = block_of_pc[term.c]

    return CFG(fn.name, blocks, entry=0, template=fn)
