"""Random-program generation for differential testing of the stack."""

from repro.fuzz.generator import (
    ProgramGenerator,
    generate_program,
    generate_programs,
)

__all__ = ["ProgramGenerator", "generate_program", "generate_programs"]
