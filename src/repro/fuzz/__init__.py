"""Random-program generation for differential testing of the stack."""

from repro.fuzz.generator import ProgramGenerator, generate_program

__all__ = ["ProgramGenerator", "generate_program"]
