"""Random minijava program generator.

Generates structured, *guaranteed-terminating* programs for
differential testing of the whole stack: every loop is a counted
``for`` with small constant bounds, every array index is masked into
range with non-negative arithmetic, and every divisor is a non-zero
constant — so a generated program can only diverge from the reference
semantics through a bug in this library, never through its own UB.

Used by the property-based tests (semantics preservation under
annotation and optimization, tracer event balance, TLS bounds) and
handy for bug hunts:

>>> import random
>>> src = ProgramGenerator(random.Random(7)).generate()
>>> "func main()" in src
True
"""

from __future__ import annotations

import random
from typing import List


class ProgramGenerator:
    """Emits one random program per :meth:`generate` call."""

    def __init__(self, rng: random.Random,
                 max_loop_depth: int = 3,
                 max_stmts_per_block: int = 4,
                 max_trip_count: int = 6,
                 n_arrays: int = 2,
                 array_size: int = 32):
        self._rng = rng
        self.max_loop_depth = max_loop_depth
        self.max_stmts_per_block = max_stmts_per_block
        self.max_trip_count = max_trip_count
        self.n_arrays = n_arrays
        self.array_size = array_size
        self._fresh = 0

    # -- naming ------------------------------------------------------------

    def _name(self, prefix: str) -> str:
        self._fresh += 1
        return "%s%d" % (prefix, self._fresh)

    # -- expressions ---------------------------------------------------------

    def _value_expr(self, scalars: List[str], depth: int = 0) -> str:
        """An int-valued expression (may go negative)."""
        rng = self._rng
        if depth >= 2 or rng.random() < 0.4:
            if scalars and rng.random() < 0.6:
                return rng.choice(scalars)
            return str(rng.randint(0, 99))
        op = rng.choice(["+", "-", "*", "%", "&", "|", "^"])
        lhs = self._value_expr(scalars, depth + 1)
        if op == "%":
            return "((%s) %% %d)" % (lhs, rng.randint(1, 17))
        rhs = self._value_expr(scalars, depth + 1)
        return "((%s) %s (%s))" % (lhs, op, rhs)

    def _index_expr(self, scalars: List[str]) -> str:
        """A guaranteed in-range, non-negative array index."""
        inner = self._value_expr(scalars, depth=1)
        return "(((%s) & 1023) %% %d)" % (inner, self.array_size)

    def _cond_expr(self, scalars: List[str]) -> str:
        lhs = self._value_expr(scalars, depth=1)
        rhs = self._value_expr(scalars, depth=1)
        op = self._rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return "(%s) %s (%s)" % (lhs, op, rhs)

    # -- statements -----------------------------------------------------------

    #: hard bound on structural nesting (loops + ifs combined); the
    #: if/for branching factor would otherwise be supercritical and
    #: generation could recurse without bound
    MAX_STMT_DEPTH = 5

    def _block(self, scalars: List[str], arrays: List[str],
               loop_depth: int, indent: str,
               stmt_depth: int = 0) -> List[str]:
        rng = self._rng
        lines: List[str] = []
        local_scalars = list(scalars)
        compound_ok = stmt_depth < self.MAX_STMT_DEPTH
        for _ in range(rng.randint(1, self.max_stmts_per_block)):
            kind = rng.random()
            if kind < 0.22 and compound_ok \
                    and loop_depth < self.max_loop_depth:
                lines.extend(self._for_loop(local_scalars, arrays,
                                            loop_depth, indent,
                                            stmt_depth))
            elif kind < 0.38 and compound_ok:
                lines.extend(self._if(local_scalars, arrays,
                                      loop_depth, indent, stmt_depth))
            elif kind < 0.55 and arrays:
                arr = rng.choice(arrays)
                lines.append("%s%s[%s] = %s;" % (
                    indent, arr, self._index_expr(local_scalars),
                    self._value_expr(local_scalars)))
            elif kind < 0.72 and arrays:
                name = self._name("v")
                arr = rng.choice(arrays)
                lines.append("%svar %s = %s[%s];" % (
                    indent, name, arr,
                    self._index_expr(local_scalars)))
                local_scalars.append(name)
            elif kind < 0.86 and local_scalars:
                # never reassign a loop iterator ("i..."): arbitrary
                # values would break the generator's termination
                # guarantee
                targets = [v for v in local_scalars
                           if not v.startswith("i")]
                if not targets:
                    continue
                target = rng.choice(targets)
                lines.append("%s%s = %s;" % (
                    indent, target, self._value_expr(local_scalars)))
            else:
                name = self._name("v")
                lines.append("%svar %s = %s;" % (
                    indent, name, self._value_expr(local_scalars)))
                local_scalars.append(name)
        return lines

    def _for_loop(self, scalars: List[str], arrays: List[str],
                  loop_depth: int, indent: str,
                  stmt_depth: int) -> List[str]:
        rng = self._rng
        it = self._name("i")
        trips = rng.randint(1, self.max_trip_count)
        head = ("%sfor (var %s = 0; %s < %d; %s = %s + 1) {"
                % (indent, it, it, trips, it, it))
        body = self._block(scalars + [it], arrays, loop_depth + 1,
                           indent + "  ", stmt_depth + 1)
        return [head] + body + ["%s}" % indent]

    def _if(self, scalars: List[str], arrays: List[str],
            loop_depth: int, indent: str, stmt_depth: int) -> List[str]:
        lines = ["%sif (%s) {" % (indent, self._cond_expr(scalars))]
        lines += self._block(scalars, arrays, loop_depth, indent + "  ",
                             stmt_depth + 1)
        if self._rng.random() < 0.5:
            lines.append("%s} else {" % indent)
            lines += self._block(scalars, arrays, loop_depth,
                                 indent + "  ", stmt_depth + 1)
        lines.append("%s}" % indent)
        return lines

    # -- whole program -----------------------------------------------------

    def generate(self) -> str:
        """One random, terminating program whose main() returns a
        checksum over all mutable state."""
        self._fresh = 0
        arrays = ["arr%d" % i for i in range(self.n_arrays)]
        lines = ["func main() {"]
        for arr in arrays:
            lines.append("  var %s = array(%d);" % (arr,
                                                    self.array_size))
        seeds = []
        for i in range(2):
            name = self._name("s")
            lines.append("  var %s = %d;" % (name,
                                             self._rng.randint(0, 50)))
            seeds.append(name)
        lines += self._block(seeds, arrays, loop_depth=0, indent="  ")
        # checksum everything so every write is observable
        lines.append("  var check = 0;")
        for arr in arrays:
            it = self._name("k")
            lines.append(
                "  for (var %s = 0; %s < %d; %s = %s + 1) {"
                % (it, it, self.array_size, it, it))
            lines.append(
                "    check = (check * 31 + %s[%s]) %% 1000003;"
                % (arr, it))
            lines.append("  }")
        for name in seeds:
            lines.append("  check = (check * 31 + %s) %% 1000003;"
                         % name)
        lines.append("  return check;")
        lines.append("}")
        return "\n".join(lines)


def generate_program(seed: int, **kwargs) -> str:
    """Convenience: one deterministic random program for ``seed``."""
    return ProgramGenerator(random.Random(seed), **kwargs).generate()


def generate_programs(base_seed: int, count: int, **kwargs):
    """Yield ``(seed, source)`` for ``count`` consecutive seeds.

    Each program gets its own :class:`random.Random` so any single
    seed from a campaign can be replayed in isolation
    (``jrpm conform --seed N``) and reproduce the exact same source.
    """
    for seed in range(base_seed, base_seed + count):
        yield seed, generate_program(seed, **kwargs)
