"""Speculative-thread compilation of a selected STL (Section 3.2).

Once TEST selects an STL, the paper's microJIT recompiles the loop with
the Table 2 runtime routines and applies dependence-eliminating
transformations: loop inductors become non-violating iterators,
reductions are completed at shutdown, loop invariants are
register-allocated, and remaining inter-thread local dependencies are
globalized (communicated through memory with the store-load
communication delay).

This module produces the *timing-relevant* summary of that compilation
for the TLS simulator: which local slots no longer cause violations and
which are forwarded with a communication delay, plus the overhead
parameters.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.cfg.candidates import STLCandidate
from repro.cfg.scalar_deps import DepClass
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.runtime.events import local_address


class STLCompilation:
    """Timing summary of speculative compilation for one loop.

    ``synchronize_heap`` models the Section 6.3 optimization the
    dependency profiles enable: inserting synchronization on the
    identified dependence-carrying accesses so consumers *wait* for the
    producer (one store-load communication delay) instead of violating
    and re-executing.
    """

    def __init__(self, candidate: STLCandidate,
                 config: HydraConfig = DEFAULT_HYDRA,
                 synchronize_heap: bool = False):
        self.candidate = candidate
        self.loop_id = candidate.loop_id
        self.config = config
        self.synchronize_heap = synchronize_heap
        scalar = candidate.scalar
        #: slots whose cross-thread dependence the compiler eliminates
        #: (inductors, reductions) — they never violate, never forward
        self.eliminated_slots: FrozenSet[int] = frozenset(
            scalar.inductors) | frozenset(scalar.reductions)
        #: read-only locals: register-allocated loop invariants
        self.invariant_slots: FrozenSet[int] = frozenset(
            s for s, c in scalar.classes.items()
            if c is DepClass.NONE)
        #: globalized locals: real cross-thread scalar flow, forwarded
        #: with the store-load communication delay
        self.forwarded_slots: FrozenSet[int] = frozenset(scalar.carried)

    def is_eliminated_local(self, frame_id: int, slot: int) -> bool:
        """Whether a local access is dependence-free after compilation."""
        return slot in self.eliminated_slots or slot in self.invariant_slots

    def is_forwarded_local(self, slot: int) -> bool:
        """Whether a local is globalized (forwarded between threads)."""
        return slot in self.forwarded_slots

    def eliminated_addresses(self, frame_id: int) -> FrozenSet[int]:
        """Synthetic local addresses eliminated for a given frame."""
        return frozenset(
            local_address(frame_id, s)
            for s in (self.eliminated_slots | self.invariant_slots))

    @property
    def per_entry_overhead(self) -> int:
        """Cycles added per loop entry (startup + shutdown, Table 2)."""
        return self.config.startup_overhead + self.config.shutdown_overhead

    @property
    def per_thread_overhead(self) -> int:
        """Cycles added per thread (end-of-iteration routine)."""
        return self.config.eoi_overhead

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<STLCompilation L%d eliminated=%s forwarded=%s>"
                % (self.loop_id, sorted(self.eliminated_slots),
                   sorted(self.forwarded_slots)))


def compile_stl(candidate: STLCandidate,
                config: HydraConfig = DEFAULT_HYDRA,
                synchronize_heap: bool = False) -> STLCompilation:
    """Compile one selected STL for speculative execution."""
    return STLCompilation(candidate, config,
                          synchronize_heap=synchronize_heap)
