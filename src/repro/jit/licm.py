"""Loop-invariant code motion into preheaders.

Natural loops come from the dominator tree (:mod:`repro.cfg`); a loop
is processed only when it has a *preheader* — a unique outside
predecessor of the header ending in an unconditional ``JMP`` to it —
which our structured codegen always produces.  Hoisted instructions
land just before that ``JMP``, so no new block and no new jump is ever
introduced.

Hoist conditions (all must hold; see DESIGN.md §11 for the rationale):

1. the candidate's block dominates every exit-edge source of the loop —
   this is the *count-safety* condition: the preheader runs once per
   loop entry, and any terminating entry executes such a block at
   least once, so the dynamic instruction count never increases (the
   conformance suite's strict ``KIND_OPT_REGRESSION`` gate).  For our
   top-test loops this limits hoisting to the header block, which is
   exactly where codegen re-materializes loop-bound constants and
   re-evaluates bound expressions every iteration;
2. no operand is written anywhere in the loop, and — the
   dominating-definition safety check — every definition of an operand
   reaching the header lies outside the loop (so the value read in the
   preheader equals the value the instruction saw in place);
3. the destination has exactly one definition in the loop (this
   instruction) and is not live into the header (its pre-loop value is
   never read on any path inside the loop);
4. instruction class:
   * pure, non-faulting ops (``CONST``/``MOV``/total ``BIN``/``UN``
     subops) hoist on conditions 1–3 alone;
   * possibly-faulting pure ops (``DIV``/``MOD``/shift/bitwise,
     ``INV``/``F2I``, ``INTRIN``, ``LEN``) additionally require that no
     observable op (``PRINT``/``ASTORE``/``CALL``/``NEWARR``) precedes
     them on any same-iteration path — hoisting may only move a fault
     *earlier*, never past output that the unoptimized program would
     have produced first;
   * ``ALOAD`` further requires the loop to contain no ``ASTORE`` or
     ``CALL`` at all (the loop must not redefine the loaded address);
   * observable ops, terminators, and annotation opcodes never move —
     annotated functions are skipped wholesale upstream.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.bytecode.opcodes import BinOp, Op, UnOp
from repro.bytecode.program import Function
from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import build_cfg
from repro.jit.layout import relinearize
from repro.cfg.natural_loops import find_loops
from repro.jit.dataflow import (compute_liveness, compute_reaching_defs)
from repro.jit.effects import (HEAP_WRITERS, OBSERVABLE_OPS, SAFE_BIN,
                               SAFE_UN, has_annotations, instr_reads,
                               instr_writes)

_KIND_NO, _KIND_PURE, _KIND_FAULTING, _KIND_LOAD = 0, 1, 2, 3


def _hoist_kind(ins) -> int:
    op = ins.op
    if op in (Op.CONST, Op.MOV):
        return _KIND_PURE
    if op == Op.BIN:
        return _KIND_PURE if BinOp(ins.sub) in SAFE_BIN else _KIND_FAULTING
    if op == Op.UN:
        return _KIND_PURE if UnOp(ins.sub) in SAFE_UN else _KIND_FAULTING
    if op in (Op.LEN, Op.INTRIN):
        return _KIND_FAULTING
    if op == Op.ALOAD:
        return _KIND_LOAD
    return _KIND_NO


def licm_function(fn: Function, stats) -> bool:
    """Hoist invariant code out of ``fn``'s loops; True when changed."""
    if has_annotations(fn):
        return False
    cfg = build_cfg(fn)
    dom = compute_dominators(cfg)
    forest = find_loops(cfg, dom)
    if not forest.loops:
        return False
    live_in, _out = compute_liveness(cfg)
    hoisted_any = False
    # innermost loops first: an inner hoist lands in the inner
    # preheader, which sits inside the outer loop and is re-examined
    # when the outer loop's turn comes
    for loop in sorted(forest.loops, key=lambda lp: -lp.depth):
        if _hoist_loop(cfg, dom, loop, live_in, stats):
            hoisted_any = True
    if hoisted_any:
        fn.code = relinearize(cfg)
    return hoisted_any


def _hoist_loop(cfg, dom, loop, live_in, stats) -> bool:
    entries = loop.entry_edges(cfg)
    if len(entries) != 1:
        return False
    pre = entries[0][0]
    pre_term = cfg.blocks[pre].terminator
    if pre_term.op != Op.JMP or pre_term.a != loop.header:
        return False

    exit_sources = {src for src, _dst in loop.exit_edges(cfg)}
    if not exit_sources:
        # a loop with no exit only terminates via the instruction
        # limit; there is no count-safety anchor, so leave it alone
        return False
    header_live_in = live_in[loop.header]

    moved = False
    for _round in range(64):
        # recomputed each round: a hoist moves def sites out of the
        # loop, which is precisely what unblocks its dependent chain
        # (CONST k, then the BIN that consumes k, ...)
        header_reach = compute_reaching_defs(cfg)[0][loop.header]
        # per-round loop facts (hoists performed last round changed them)
        write_count: Dict[int, int] = {}
        heap_mutating = False
        observable_blocks: Set[int] = set()
        for bid in loop.blocks:
            for ins in cfg.blocks[bid].instrs:
                w = instr_writes(ins)
                if w is not None:
                    write_count[w] = write_count.get(w, 0) + 1
                if ins.op in OBSERVABLE_OPS:
                    observable_blocks.add(bid)
                if ins.op in HEAP_WRITERS:
                    heap_mutating = True

        hoist = None
        for bid in sorted(loop.blocks):
            if not all(dom.dominates(bid, e) for e in exit_sources):
                continue
            block = cfg.blocks[bid]
            seen_observable = False
            for idx, ins in enumerate(block.instrs[:-1]):
                op = ins.op
                kind = _hoist_kind(ins)
                if kind == _KIND_NO:
                    if op in OBSERVABLE_OPS:
                        seen_observable = True
                    continue
                w = instr_writes(ins)
                if w is None or write_count.get(w, 0) != 1:
                    continue
                if w in header_live_in:
                    continue
                reads = instr_reads(ins)
                if any(write_count.get(s, 0) for s in reads):
                    continue
                # dominating-definition safety: operand values entering
                # the header must come only from outside the loop
                if any(dbid in loop.blocks
                       for slot, dbid, _i in header_reach
                       if slot in reads):
                    continue
                if kind in (_KIND_FAULTING, _KIND_LOAD):
                    if seen_observable:
                        continue
                    if any(ob != bid and not dom.dominates(bid, ob)
                           for ob in observable_blocks):
                        continue
                if kind == _KIND_LOAD and heap_mutating:
                    continue
                hoist = (bid, idx)
                break
            if hoist is not None:
                break

        if hoist is None:
            break
        bid, idx = hoist
        ins = cfg.blocks[bid].instrs.pop(idx)
        cfg.insert_before_terminator(pre, [ins])
        stats.licm_hoisted += 1
        moved = True
    return moved
