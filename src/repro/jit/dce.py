"""Global dead-code elimination driven by liveness.

A definition is removed when its slot is dead immediately after it
*and* the instruction is free of every other effect: no output, no
heap access or allocation, no call, and — crucially — no possible
fault.  The legacy optimizer restricted itself to temp slots because
its analysis was whole-function flow-insensitive; with per-block
liveness, dead stores to *named locals* go too (which also drops
their would-be ``SWL`` tracer events downstream).

The fault guard is what keeps the conformance differential honest:
``1 / zero`` assigned to a never-read local still faults in the
unoptimized program, so it must fault in the optimized one.  Only
instruction classes that are total over all runtime values are
eligible (see :mod:`repro.jit.effects`).
"""

from __future__ import annotations

from repro.bytecode.opcodes import BinOp, Op, UnOp
from repro.bytecode.program import Function
from repro.cfg.graph import build_cfg
from repro.jit.layout import relinearize
from repro.jit.dataflow import compute_liveness
from repro.jit.effects import (SAFE_BIN, SAFE_UN, has_annotations,
                               instr_reads, instr_writes)

#: opcodes whose only effect is writing their destination slot
_PURE_OPS = frozenset([Op.CONST, Op.MOV])


def _removable_if_dead(ins) -> bool:
    op = ins.op
    if op in _PURE_OPS:
        return True
    if op == Op.BIN:
        return BinOp(ins.sub) in SAFE_BIN
    if op == Op.UN:
        return UnOp(ins.sub) in SAFE_UN
    # ALOAD/LEN/NEWARR/INTRIN/CALL all either fault for some inputs or
    # have observable effects (allocation identity, callee effects), so
    # they survive even when their result is dead.
    return False


def dce_function(fn: Function, stats) -> bool:
    """Remove dead definitions from ``fn``; returns True when changed."""
    if has_annotations(fn):
        return False
    cfg = build_cfg(fn)
    reachable = cfg.reachable()
    changed = False
    # removing a def kills its operands' uses, which can expose more
    # dead defs upstream — iterate to a (small) fixed point
    for _ in range(16):
        _in, out = compute_liveness(cfg)
        removed = 0
        for bid in reachable:
            block = cfg.blocks[bid]
            live = set(out[bid])
            kept = []
            for ins in reversed(block.instrs):
                w = instr_writes(ins)
                if ins.op == Op.MOV and ins.a == ins.b:
                    removed += 1  # self-move: no effect regardless of liveness
                    continue
                if w is not None and w not in live and _removable_if_dead(ins):
                    removed += 1
                    continue
                if w is not None:
                    live.discard(w)
                live.update(instr_reads(ins))
                kept.append(ins)
            kept.reverse()
            block.instrs[:] = kept
        if removed == 0:
            break
        stats.dead_removed += removed
        changed = True
    if changed:
        fn.code = relinearize(cfg)
    return changed
