"""Superlocal value numbering (with constant folding, algebraic
identities, common-subexpression elimination, branch folding, and
strength reduction).

The pass assigns a value number to every slot as a block is scanned;
two slots with the same number provably hold the same value at that
point.  Scope is *superlocal*: blocks are visited in reverse postorder
and a block whose only predecessor has already been scanned starts
from a clone of that predecessor's end-of-block state — a single
predecessor trivially dominates, so every numbered fact still holds on
entry.  This is what catches the cross-block redundancies codegen
leaves behind, e.g. a loop header that loads ``tree_left[node]`` for
its exit test and a branch arm that reloads the same address: the arm
inherits the header's heap facts and the second ``ALOAD`` becomes a
``MOV`` (one committed tracer event fewer per iteration).  Merge
points (several predecessors, loop headers) start fresh.

On top of the numbering we layer:

* **constant folding** — pure ops over known constants are evaluated at
  compile time via the *runtime's own* ``apply_binop``/``apply_unop``/
  ``apply_intrinsic``, so folded semantics (Java-style truncating
  division, float faults on bitwise ops) are exact by construction; an
  evaluation that raises simply doesn't fold, so faulting instructions
  always survive (the ``_FAULTING_BIN`` rule);
* **algebraic identities** — ``x+0``, ``x*1``, ``x/1`` and friends
  become ``MOV``s, guarded so the identity is value- *and type*-exact
  (``0.0 + x`` promotes ints to floats and is not an identity here);
* **CSE** — a recomputation of an available expression becomes a
  ``MOV`` from a slot still holding it.  Redundant ``ALOAD``s
  participate through a heap epoch that ``ASTORE``/``CALL`` advance,
  with store-to-load forwarding for the address just written;
* **branch folding** — ``BR`` on a known constant becomes ``JMP`` and
  the stranded arm is dropped at linearization;
* **strength reduction** — ``MUL``/``DIV``/``MOD`` by a power-of-two
  constant defined by a single-use in-block ``CONST`` is rewritten to
  ``SHL``/``SHR``/``AND`` *in place* (the ``CONST``'s immediate is
  retargeted to the shift count / mask), so the transform never adds
  an instruction.  Guards: the factor operand must be a provable int
  (shift semantics differ from float multiply) and, for ``DIV``/
  ``MOD``, provably non-negative (Java division truncates toward zero
  while ``>>`` floors; Java ``%`` takes the dividend's sign).

Every rewrite here is 1:1 or removing, so the dynamic instruction
count never increases — the conformance suite's strict
``KIND_OPT_REGRESSION`` gate relies on this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import BinOp, Op, UnOp
from repro.bytecode.program import Function
from repro.errors import ExecutionError
from repro.jit.dataflow import compute_liveness
from repro.jit.effects import (COMMUTATIVE_BIN, has_annotations,
                               instr_reads, instr_writes)
from repro.cfg.graph import build_cfg
from repro.jit.layout import relinearize
from repro.runtime.values import apply_binop, apply_intrinsic, apply_unop

#: exceptions a compile-time evaluation may raise; any of these means
#: "leave the instruction alone and let the runtime fault" (F2I of
#: inf/nan raises OverflowError/ValueError, not ExecutionError).
_FOLD_ERRORS = (ExecutionError, ValueError, OverflowError, ZeroDivisionError)

_COMPARES = frozenset([BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE,
                       BinOp.EQ, BinOp.NE])
_BITWISE = frozenset([BinOp.AND, BinOp.OR, BinOp.XOR, BinOp.SHL, BinOp.SHR])


class _BlockState:
    """Value-numbering state for one basic block scan."""

    def __init__(self):
        self.next_vn = 0
        self.vn_of_slot: Dict[int, int] = {}
        self.slots_of_vn: Dict[int, List[int]] = {}
        self.key_to_vn: Dict[Tuple, int] = {}
        self.const_of: Dict[int, object] = {}
        self.int_vns: Set[int] = set()
        self.nonneg_vns: Set[int] = set()
        self.heap_epoch = 0
        # strength-reduction bookkeeping (runtime-accurate, maintained
        # as rewrites happen — the pre-scan tables alone would go stale)
        self.reads_since_def: Dict[int, int] = {}
        self.const_def_at: Dict[int, int] = {}

    def clone(self) -> "_BlockState":
        """Independent copy for a sole successor block.  ``const_def_at``
        is dropped: strength reduction may never retarget a ``CONST``
        that lives in an ancestor block (other paths may read it)."""
        st = _BlockState.__new__(_BlockState)
        st.next_vn = self.next_vn
        st.vn_of_slot = dict(self.vn_of_slot)
        st.slots_of_vn = {vn: list(slots)
                          for vn, slots in self.slots_of_vn.items()}
        st.key_to_vn = dict(self.key_to_vn)
        st.const_of = dict(self.const_of)
        st.int_vns = set(self.int_vns)
        st.nonneg_vns = set(self.nonneg_vns)
        st.heap_epoch = self.heap_epoch
        st.reads_since_def = dict(self.reads_since_def)
        st.const_def_at = {}
        return st

    # -- value numbers ---------------------------------------------------

    def fresh(self) -> int:
        vn = self.next_vn
        self.next_vn += 1
        return vn

    def vn_of(self, slot: int) -> int:
        vn = self.vn_of_slot.get(slot)
        if vn is None:
            vn = self.fresh()
            self.bind(slot, vn)
        return vn

    def bind(self, slot: int, vn: int) -> None:
        self.vn_of_slot[slot] = vn
        self.slots_of_vn.setdefault(vn, []).append(slot)
        self.reads_since_def[slot] = 0
        self.const_def_at.pop(slot, None)

    def rep(self, vn: int) -> Optional[int]:
        """Earliest slot still holding ``vn``, pruning stale entries."""
        slots = self.slots_of_vn.get(vn)
        if not slots:
            return None
        keep = [s for s in slots if self.vn_of_slot.get(s) == vn]
        self.slots_of_vn[vn] = keep
        return keep[0] if keep else None

    def const_vn(self, value) -> int:
        # the type tag keeps 0 and 0.0 apart (they are equal dict keys
        # in Python but not interchangeable values: printing and float
        # promotion both observe the difference)
        key = ("const", type(value).__name__, value)
        vn = self.key_to_vn.get(key)
        if vn is None:
            vn = self.fresh()
            self.key_to_vn[key] = vn
            self.const_of[vn] = value
            if isinstance(value, int):
                self.int_vns.add(vn)
                if value >= 0:
                    self.nonneg_vns.add(vn)
        return vn

    def is_int(self, vn: int) -> bool:
        return vn in self.int_vns

    def is_nonneg(self, vn: int) -> bool:
        return vn in self.nonneg_vns

    def mark(self, vn: int, is_int: bool, nonneg: bool) -> None:
        if is_int:
            self.int_vns.add(vn)
            if nonneg:
                self.nonneg_vns.add(vn)


def lvn_function(fn: Function, stats) -> bool:
    """Run LVN over every block of ``fn``; returns True when changed."""
    if has_annotations(fn):
        return False
    cfg = build_cfg(fn)
    _live_in, live_out = compute_liveness(cfg)
    reachable = cfg.reachable()
    preds = cfg.predecessors_map()
    changed = False
    folded_branches = False
    end_states: Dict[int, _BlockState] = {}
    for bid in cfg.reverse_postorder():
        block = cfg.blocks[bid]
        p = preds.get(bid, ())
        # sole already-scanned predecessor: its facts hold on entry
        # (back-edge sole predecessors are unscanned and start fresh)
        state = (end_states[p[0]].clone()
                 if len(p) == 1 and p[0] in end_states and p[0] != bid
                 else None)
        ch, br, end = _lvn_block(block.instrs, live_out[bid], stats,
                                 state)
        end_states[bid] = end
        changed = changed or ch
        folded_branches = folded_branches or br
    if folded_branches:
        # dropped arms become unreachable; account for them before
        # linearization discards them
        still = cfg.reachable()
        dropped = sum(len(cfg.blocks[b].instrs)
                      for b in reachable if b not in still)
        stats.unreachable_removed += dropped
    if changed:
        fn.code = relinearize(cfg)
    return changed


# ---------------------------------------------------------------------------
# one block
# ---------------------------------------------------------------------------

def _lvn_block(instrs: List[Instr], live_out, stats,
               state: Optional[_BlockState] = None,
               ) -> Tuple[bool, bool, _BlockState]:
    if state is None:
        state = _BlockState()
    changed = False
    folded_branch = False

    # original read/def pc tables for the strength-reduction "no future
    # use of the constant's slot" check (defs are never retargeted by
    # any rewrite below, so def pcs stay valid; reads are conservative)
    orig_read_pcs: Dict[int, List[int]] = {}
    orig_def_pcs: Dict[int, List[int]] = {}
    for pc, ins in enumerate(instrs):
        for s in instr_reads(ins):
            orig_read_pcs.setdefault(s, []).append(pc)
        w = instr_writes(ins)
        if w is not None:
            orig_def_pcs.setdefault(w, []).append(pc)

    def resolve(slot: int) -> Tuple[int, int, bool]:
        """Return (slot', vn, rewritten) with slot' the canonical holder."""
        vn = state.vn_of(slot)
        r = state.rep(vn)
        if r is not None and r != slot:
            return r, vn, True
        return slot, vn, False

    def note_reads(*slots: int) -> None:
        for s in slots:
            state.reads_since_def[s] = state.reads_since_def.get(s, 0) + 1

    pc = 0
    while pc < len(instrs):
        ins = instrs[pc]
        op = ins.op

        if op == Op.CONST:
            state.bind(ins.a, state.const_vn(ins.imm))
            state.const_def_at[ins.a] = pc

        elif op == Op.MOV:
            b, vn, rw = resolve(ins.b)
            if rw:
                ins.b = b
                stats.copies_propagated += 1
                changed = True
            note_reads(ins.b)
            state.bind(ins.a, vn)

        elif op == Op.BIN:
            ch2, again = _lvn_bin(instrs, pc, state, live_out,
                                  orig_read_pcs, orig_def_pcs,
                                  resolve, note_reads, stats)
            changed = changed or ch2
            if again:
                continue  # instruction was replaced; reprocess it

        elif op == Op.UN:
            b, vb, rw = resolve(ins.b)
            if rw:
                ins.b = b
                stats.copies_propagated += 1
                changed = True
            note_reads(ins.b)
            if vb in state.const_of:
                try:
                    value = apply_unop(ins.sub, state.const_of[vb])
                except _FOLD_ERRORS:
                    value = _NOFOLD
                if value is not _NOFOLD:
                    instrs[pc] = Instr(Op.CONST, a=ins.a, imm=value)
                    stats.folded += 1
                    changed = True
                    continue
            key = ("un", int(ins.sub), vb)
            if _try_cse(instrs, pc, key, state, stats):
                changed = True
                continue
            vn = state.fresh()
            state.key_to_vn[key] = vn
            sub = UnOp(ins.sub)
            if sub in (UnOp.NOT,):
                state.mark(vn, True, True)
            elif sub in (UnOp.INV, UnOp.F2I):
                state.mark(vn, True, False)
            elif sub == UnOp.NEG and state.is_int(vb):
                state.mark(vn, True, False)
            state.bind(ins.a, vn)

        elif op == Op.LEN:
            b, vb, rw = resolve(ins.b)
            if rw:
                ins.b = b
                stats.copies_propagated += 1
                changed = True
            note_reads(ins.b)
            key = ("len", vb)  # array lengths are immutable: no epoch
            if _try_cse(instrs, pc, key, state, stats):
                changed = True
                continue
            vn = state.fresh()
            state.key_to_vn[key] = vn
            state.mark(vn, True, True)
            state.bind(ins.a, vn)

        elif op == Op.ALOAD:
            (b, vb, rw1) = resolve(ins.b)
            (c, vc, rw2) = resolve(ins.c)
            if rw1:
                ins.b = b
            if rw2:
                ins.c = c
            if rw1 or rw2:
                stats.copies_propagated += rw1 + rw2
                changed = True
            note_reads(ins.b, ins.c)
            key = ("aload", vb, vc, state.heap_epoch)
            if _try_cse(instrs, pc, key, state, stats):
                changed = True
                continue
            vn = state.fresh()
            state.key_to_vn[key] = vn
            state.bind(ins.a, vn)

        elif op == Op.ASTORE:
            for field in ("a", "b", "c"):
                s, _vn, rw = resolve(getattr(ins, field))
                if rw:
                    setattr(ins, field, s)
                    stats.copies_propagated += 1
                    changed = True
            note_reads(ins.a, ins.b, ins.c)
            va = state.vn_of(ins.a)
            vb = state.vn_of(ins.b)
            vc = state.vn_of(ins.c)
            state.heap_epoch += 1
            # store-to-load forwarding: a successful store proves the
            # index is in bounds, so a following load of the same
            # address in the new epoch yields the stored value
            state.key_to_vn[("aload", va, vb, state.heap_epoch)] = vc

        elif op == Op.NEWARR:
            b, _vb, rw = resolve(ins.b)
            if rw:
                ins.b = b
                stats.copies_propagated += 1
                changed = True
            note_reads(ins.b)
            state.bind(ins.a, state.fresh())

        elif op == Op.CALL:
            new_args = []
            for s in ins.args:
                s2, _vn, rw = resolve(s)
                if rw:
                    stats.copies_propagated += 1
                    changed = True
                new_args.append(s2)
            ins.args = tuple(new_args)
            note_reads(*ins.args)
            state.heap_epoch += 1  # the callee may mutate any array
            if ins.a >= 0:
                state.bind(ins.a, state.fresh())

        elif op == Op.INTRIN:
            new_args = []
            arg_vns = []
            for s in ins.args:
                s2, vn, rw = resolve(s)
                if rw:
                    stats.copies_propagated += 1
                    changed = True
                new_args.append(s2)
                arg_vns.append(vn)
            ins.args = tuple(new_args)
            note_reads(*ins.args)
            if all(v in state.const_of for v in arg_vns):
                try:
                    value = apply_intrinsic(
                        ins.name, [state.const_of[v] for v in arg_vns])
                except _FOLD_ERRORS:
                    value = _NOFOLD
                if value is not _NOFOLD:
                    instrs[pc] = Instr(Op.CONST, a=ins.a, imm=value)
                    stats.folded += 1
                    changed = True
                    continue
            key = ("intrin", ins.name, tuple(arg_vns))
            if _try_cse(instrs, pc, key, state, stats):
                changed = True
                continue
            vn = state.fresh()
            state.key_to_vn[key] = vn
            state.bind(ins.a, vn)

        elif op == Op.PRINT:
            a, _vn, rw = resolve(ins.a)
            if rw:
                ins.a = a
                stats.copies_propagated += 1
                changed = True
            note_reads(ins.a)

        elif op == Op.BR:
            a, va, rw = resolve(ins.a)
            if rw:
                ins.a = a
                stats.copies_propagated += 1
                changed = True
            note_reads(ins.a)
            if va in state.const_of:
                taken = state.const_of[va] != 0
                target = ins.b if taken else ins.c
                instrs[pc] = Instr(Op.JMP, a=target)
                stats.branches_folded += 1
                changed = True
                folded_branch = True

        elif op == Op.RET:
            if ins.a >= 0:
                a, _vn, rw = resolve(ins.a)
                if rw:
                    ins.a = a
                    stats.copies_propagated += 1
                    changed = True
                note_reads(ins.a)

        # JMP / NOP / annotations: nothing to do (annotated functions
        # never reach here — lvn_function bails out up front)
        pc += 1

    return changed, folded_branch, state


_NOFOLD = object()


def _try_cse(instrs: List[Instr], pc: int, key: Tuple,
             state: _BlockState, stats) -> bool:
    """Replace instrs[pc] with a MOV from an available prior result."""
    vn = state.key_to_vn.get(key)
    if vn is None:
        return False
    r = state.rep(vn)
    if r is None:
        # the value exists as a number but no slot still holds it
        # (e.g. store-to-load forwarding of an overwritten slot)
        return False
    ins = instrs[pc]
    instrs[pc] = Instr(Op.MOV, a=ins.a, b=r)
    state.reads_since_def[r] = state.reads_since_def.get(r, 0) + 1
    state.bind(ins.a, vn)
    stats.cse_replaced += 1
    return True


# ---------------------------------------------------------------------------
# BIN: fold / identities / strength reduction / CSE
# ---------------------------------------------------------------------------

def _lvn_bin(instrs, pc, state, live_out, orig_read_pcs, orig_def_pcs,
             resolve, note_reads, stats) -> Tuple[bool, bool]:
    """Process a BIN.  Returns (changed, reprocess_same_pc)."""
    ins = instrs[pc]
    changed = False
    b, vb, rw1 = resolve(ins.b)
    c, vc, rw2 = resolve(ins.c)
    if rw1:
        ins.b = b
    if rw2:
        ins.c = c
    if rw1 or rw2:
        stats.copies_propagated += rw1 + rw2
        changed = True
    sub = BinOp(ins.sub)
    cb = state.const_of.get(vb, _NOFOLD)
    cc = state.const_of.get(vc, _NOFOLD)

    # ---- constant folding ----------------------------------------------
    if cb is not _NOFOLD and cc is not _NOFOLD:
        try:
            value = apply_binop(sub, cb, cc)
        except _FOLD_ERRORS:
            value = _NOFOLD
        if value is not _NOFOLD:
            instrs[pc] = Instr(Op.CONST, a=ins.a, imm=value)
            stats.folded += 1
            return True, True

    # ---- algebraic identities ------------------------------------------
    repl = _identity(sub, ins, state, vb, vc, cb, cc)
    if repl is not None:
        instrs[pc] = repl
        stats.algebraic += 1
        return True, True

    # ---- strength reduction --------------------------------------------
    if _strength_reduce(instrs, pc, state, live_out,
                        orig_read_pcs, orig_def_pcs, vb, vc, cb, cc):
        stats.strength_reduced += 1
        ins = instrs[pc]
        sub = BinOp(ins.sub)
        vb = state.vn_of(ins.b)
        vc = state.vn_of(ins.c)
        changed = True

    note_reads(ins.b, ins.c)

    # ---- CSE ------------------------------------------------------------
    if sub in COMMUTATIVE_BIN:
        lo, hi = (vb, vc) if vb <= vc else (vc, vb)
        key = ("bin", int(sub), lo, hi)
    else:
        key = ("bin", int(sub), vb, vc)
    if _try_cse(instrs, pc, key, state, stats):
        return True, False

    # ---- define ----------------------------------------------------------
    vn = state.fresh()
    state.key_to_vn[key] = vn
    both_int = state.is_int(vb) and state.is_int(vc)
    both_nn = state.is_nonneg(vb) and state.is_nonneg(vc)
    if sub in _COMPARES:
        state.mark(vn, True, True)
    elif sub in _BITWISE:
        state.mark(vn, True, both_nn)
    elif sub in (BinOp.ADD, BinOp.MUL):
        state.mark(vn, both_int, both_int and both_nn)
    elif sub == BinOp.SUB:
        state.mark(vn, both_int, False)
    elif sub == BinOp.DIV:
        state.mark(vn, both_int, both_int and both_nn)
    elif sub == BinOp.MOD:
        # Java % takes the dividend's sign
        state.mark(vn, both_int, both_int and state.is_nonneg(vb))
    state.bind(ins.a, vn)
    return changed, False


def _is_int_zero(v) -> bool:
    return type(v) is int and v == 0


def _is_int_one(v) -> bool:
    return type(v) is int and v == 1


def _identity(sub, ins, state, vb, vc, cb, cc) -> Optional[Instr]:
    """Value- and type-exact simplification of one BIN, or None.

    Only int constants participate: ``0.0 + x`` promotes an int ``x``
    to float, so it is *not* the identity.  ``int 0 + x`` is ``x`` for
    both int and float ``x``; likewise ``x * 1`` and ``x / 1``.
    Anything that can fault for the surviving operand's possible types
    (bitwise/shift ops on floats) additionally requires an int proof.
    """
    a = ins.a
    if sub == BinOp.ADD:
        if _is_int_zero(cb):
            return Instr(Op.MOV, a=a, b=ins.c)
        if _is_int_zero(cc):
            return Instr(Op.MOV, a=a, b=ins.b)
    elif sub == BinOp.SUB:
        if _is_int_zero(cc):
            return Instr(Op.MOV, a=a, b=ins.b)
    elif sub == BinOp.MUL:
        if _is_int_one(cb):
            return Instr(Op.MOV, a=a, b=ins.c)
        if _is_int_one(cc):
            return Instr(Op.MOV, a=a, b=ins.b)
        if (_is_int_zero(cb) and state.is_int(vc)) or \
                (_is_int_zero(cc) and state.is_int(vb)):
            return Instr(Op.CONST, a=a, imm=0)
    elif sub == BinOp.DIV:
        if _is_int_one(cc):
            return Instr(Op.MOV, a=a, b=ins.b)
    elif sub == BinOp.MOD:
        if _is_int_one(cc) and state.is_int(vb):
            return Instr(Op.CONST, a=a, imm=0)
    elif sub in (BinOp.SHL, BinOp.SHR):
        if _is_int_zero(cc) and state.is_int(vb):
            return Instr(Op.MOV, a=a, b=ins.b)
    elif sub in (BinOp.OR, BinOp.XOR):
        if _is_int_zero(cb) and state.is_int(vc):
            return Instr(Op.MOV, a=a, b=ins.c)
        if _is_int_zero(cc) and state.is_int(vb):
            return Instr(Op.MOV, a=a, b=ins.b)
    elif sub == BinOp.AND:
        if (_is_int_zero(cb) and state.is_int(vc)) or \
                (_is_int_zero(cc) and state.is_int(vb)):
            return Instr(Op.CONST, a=a, imm=0)
    return None


_SR_SUBS = {BinOp.MUL: BinOp.SHL, BinOp.DIV: BinOp.SHR, BinOp.MOD: BinOp.AND}


def _strength_reduce(instrs, pc, state, live_out,
                     orig_read_pcs, orig_def_pcs, vb, vc, cb, cc) -> bool:
    """Rewrite MUL/DIV/MOD by 2**k into SHL/SHR/AND, in place.

    The power-of-two constant's defining ``CONST`` (same block, sole
    consumer) has its immediate retargeted to the shift count / mask,
    so the transform adds no instruction.  See the module docstring
    for the int / non-negative guards.
    """
    ins = instrs[pc]
    sub = BinOp(ins.sub)
    new_sub = _SR_SUBS.get(sub)
    if new_sub is None:
        return False

    if sub == BinOp.MUL and type(cb) is int and cb >= 2 \
            and cb & (cb - 1) == 0 and state.is_int(vc):
        # put the variable operand on b, the constant on c
        ins.b, ins.c = ins.c, ins.b
        const_slot, factor = ins.c, cb
    elif type(cc) is int and cc >= 2 and cc & (cc - 1) == 0:
        if sub == BinOp.MUL:
            if not state.is_int(vb):
                return False
        elif not (state.is_int(vb) and state.is_nonneg(vb)):
            return False
        const_slot, factor = ins.c, cc
    else:
        return False
    if ins.b == ins.c:
        return False

    # the constant's slot must be single-purpose: defined by a CONST in
    # this block, never read since (tracked through rewrites), with no
    # original read later in the block and dead across the block edge —
    # only then can its immediate be retargeted without other readers
    # observing the new value
    j = state.const_def_at.get(const_slot)
    if j is None or instrs[j].op != Op.CONST:
        return False
    if state.reads_since_def.get(const_slot, 0) != 0:
        return False
    future_defs = [d for d in orig_def_pcs.get(const_slot, ()) if d > pc]
    horizon = min(future_defs) if future_defs else len(instrs)
    for r in orig_read_pcs.get(const_slot, ()):
        if pc < r < horizon:
            return False
    if not future_defs and const_slot in live_out:
        return False

    k = factor.bit_length() - 1
    instrs[j].imm = (factor - 1) if sub == BinOp.MOD else k
    ins.sub = int(new_sub)
    # rebind the constant slot to its new value so later lookups of the
    # old power-of-two never pick this slot as a representative
    state.bind(const_slot, state.const_vn(instrs[j].imm))
    state.const_def_at[const_slot] = j
    return True
