"""Count-safe CFG flattening for the optimizer passes.

``CFG.linearize`` makes every fallthrough edge an explicit ``JMP`` —
correct, but an *executed* instruction the original program didn't
have, which would violate the optimizer's never-more-instructions
guarantee on functions where codegen fell through between blocks.

``relinearize`` instead keeps blocks in their original order (block
ids are assigned in pc order by ``build_cfg``) and **elides** any
terminating ``JMP`` whose target is the next block in layout — the
interpreter's ``pc + 1`` fallthrough takes over.  Every ``JMP`` that
``build_cfg`` synthesized comes right back out, and pre-existing
jumps-to-next disappear too (including ``BR``s that branch folding
collapsed), so the flattened code executes at most as many
instructions as the CFG it came from.  A block reduced to a lone
elided ``JMP`` contributes nothing and its incoming branches thread
through to its successor.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op
from repro.cfg.graph import CFG


def relinearize(cfg: CFG) -> List[Instr]:
    """Flatten ``cfg`` to code in original block order, eliding
    jumps-to-next (drops unreachable blocks)."""
    reach = cfg.reachable()
    order = [bid for bid in sorted(cfg.blocks) if bid in reach]
    next_of = {order[i]: order[i + 1] for i in range(len(order) - 1)}
    elide = set()
    for bid in order:
        term = cfg.blocks[bid].terminator
        if term.op == Op.JMP and next_of.get(bid) == term.a:
            elide.add(bid)

    start: Dict[int, int] = {}
    pc = 0
    for bid in order:
        start[bid] = pc
        pc += len(cfg.blocks[bid].instrs) - (1 if bid in elide else 0)

    code: List[Instr] = []
    for bid in order:
        instrs = cfg.blocks[bid].instrs
        body = instrs[:-1] if bid in elide else instrs
        for ins in body:
            copy = ins.copy()
            if copy.op == Op.JMP:
                copy.a = start[copy.a]
            elif copy.op == Op.BR:
                copy.b = start[copy.b]
                copy.c = start[copy.c]
            code.append(copy)
    return code
