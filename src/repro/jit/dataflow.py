"""A small iterative dataflow framework over :class:`repro.cfg.CFG`.

Two union/gen-kill solvers — forward and backward — plus the two
concrete analyses the optimizer passes need: liveness (drives global
dead-code elimination and the loop-invariant hoist-safety checks) and
reaching definitions (the dominating-definition check for hoisted
loads).  Both operate on whole basic blocks; the per-instruction
refinement happens inside the passes themselves.

Sets are plain frozensets and the solvers iterate to a fixed point in
reverse postorder (forward) or its reverse (backward); our CFGs are
reducible (structured codegen), so this converges in a handful of
sweeps.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.cfg.graph import CFG
from repro.jit.effects import instr_reads, instr_writes

BlockSets = Dict[int, FrozenSet]


def solve_forward(cfg: CFG, gen: BlockSets, kill: BlockSets,
                  ) -> Tuple[BlockSets, BlockSets]:
    """Forward union problem: in[b] = U out[p]; out[b] = gen | (in - kill).

    Returns ``(in_map, out_map)`` over every reachable block;
    unreachable blocks get empty sets.
    """
    order = cfg.reverse_postorder()
    preds = cfg.predecessors_map()
    empty: FrozenSet = frozenset()
    in_map: BlockSets = {bid: empty for bid in cfg.blocks}
    out_map: BlockSets = {bid: empty for bid in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for bid in order:
            new_in: FrozenSet = empty
            for p in preds.get(bid, ()):
                new_in = new_in | out_map[p]
            new_out = gen.get(bid, empty) | (new_in - kill.get(bid, empty))
            if new_in != in_map[bid] or new_out != out_map[bid]:
                in_map[bid] = new_in
                out_map[bid] = new_out
                changed = True
    return in_map, out_map


def solve_backward(cfg: CFG, gen: BlockSets, kill: BlockSets,
                   ) -> Tuple[BlockSets, BlockSets]:
    """Backward union problem: out[b] = U in[s]; in[b] = gen | (out - kill)."""
    order = cfg.reverse_postorder()
    order.reverse()
    empty: FrozenSet = frozenset()
    in_map: BlockSets = {bid: empty for bid in cfg.blocks}
    out_map: BlockSets = {bid: empty for bid in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for bid in order:
            new_out: FrozenSet = empty
            for s in cfg.successors(bid):
                new_out = new_out | in_map[s]
            new_in = gen.get(bid, empty) | (new_out - kill.get(bid, empty))
            if new_out != out_map[bid] or new_in != in_map[bid]:
                out_map[bid] = new_out
                in_map[bid] = new_in
                changed = True
    return in_map, out_map


# ---------------------------------------------------------------------------
# liveness
# ---------------------------------------------------------------------------

def block_uses_defs(instrs) -> Tuple[FrozenSet, FrozenSet]:
    """Upward-exposed uses and defined slots of one block's instructions."""
    uses: set = set()
    defs: set = set()
    for ins in instrs:
        for s in instr_reads(ins):
            if s not in defs:
                uses.add(s)
        w = instr_writes(ins)
        if w is not None:
            defs.add(w)
    return frozenset(uses), frozenset(defs)


def compute_liveness(cfg: CFG) -> Tuple[BlockSets, BlockSets]:
    """Per-block live-in / live-out slot sets.

    ``live_in[b]`` is the set of slots whose value on entry to ``b``
    may still be read; a def whose slot is not live immediately after
    it is dead.  Exit blocks (RET) have empty live-out — RET's own
    read is part of its block's use set.
    """
    gen: BlockSets = {}
    kill: BlockSets = {}
    for bid, block in cfg.blocks.items():
        uses, defs = block_uses_defs(block.instrs)
        gen[bid] = uses
        kill[bid] = defs
    return solve_backward(cfg, gen, kill)


# ---------------------------------------------------------------------------
# reaching definitions
# ---------------------------------------------------------------------------

def compute_reaching_defs(cfg: CFG) -> Tuple[BlockSets, BlockSets]:
    """Per-block reaching-definition sets.

    Elements are ``(slot, bid, idx)`` def sites.  A def reaches a point
    when some path from it to the point contains no other def of the
    same slot.  Slots never written anywhere simply have no sites
    (bytecode slots default to 0 at frame entry).
    """
    # collect def sites and the set of sites per slot (for kill sets)
    sites_of_slot: Dict[int, List[Tuple[int, int, int]]] = {}
    for bid, block in cfg.blocks.items():
        for idx, ins in enumerate(block.instrs):
            w = instr_writes(ins)
            if w is not None:
                sites_of_slot.setdefault(w, []).append((w, bid, idx))
    gen: BlockSets = {}
    kill: BlockSets = {}
    for bid, block in cfg.blocks.items():
        last: Dict[int, Tuple[int, int, int]] = {}
        for idx, ins in enumerate(block.instrs):
            w = instr_writes(ins)
            if w is not None:
                last[w] = (w, bid, idx)
        gen[bid] = frozenset(last.values())
        killed: set = set()
        for slot in last:
            killed.update(s for s in sites_of_slot[slot] if s[1] != bid)
        kill[bid] = frozenset(killed)
    return solve_forward(cfg, gen, kill)
