"""The optimizing pass pipeline (paper Section 3.2: the microJIT
"also performs optimizations and transformations" before annotating).

This module is the pass manager; the passes themselves live in
sibling modules:

* :mod:`repro.jit.lvn` — local value numbering: constant folding,
  algebraic identities, CSE (including redundant ``ALOAD``s via a heap
  epoch), branch folding, and power-of-two strength reduction;
* :mod:`repro.jit.licm` — loop-invariant code motion into preheaders;
* :mod:`repro.jit.dce` — liveness-driven global dead-code elimination
  (safe for named locals, not just temps);

built on :mod:`repro.jit.effects` (exhaustive read/write/effect
tables) and :mod:`repro.jit.dataflow` (liveness + reaching defs over
:mod:`repro.cfg`).

Contract with the rest of the system:

* runs strictly **before** annotation — functions already carrying
  annotation opcodes are barriers and are left untouched;
* ``verify_program`` runs after every pass over the whole program, so
  a pass bug surfaces at its own doorstep rather than three stages
  later in the interpreter;
* no pass ever increases the dynamic instruction count of any
  execution — rewrites are 1:1, removing, or motion into a
  dominating-entry preheader.  The conformance differential enforces
  this (``KIND_OPT_REGRESSION``);
* per-pass counters accumulate in :class:`OptimizeStats`, which
  travels into ``JrpmReport`` / ``jrpm run --json`` (schema v3) and
  the analysis service's ``/metrics``.

Pass ordering: LVN first (folding feeds every later pass and exposes
invariant operands), LICM second (hoists what LVN canonicalized), DCE
last (sweeps the MOV husks CSE and copy propagation leave behind).
The trio repeats until a fixed point, bounded by a small round cap.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bytecode.program import Function, Program
from repro.bytecode.verifier import verify_program
from repro.jit.dce import dce_function
from repro.jit.licm import licm_function
from repro.jit.lvn import lvn_function

_MAX_ROUNDS = 4

#: counter fields, in report order — one per distinct rewrite kind
STAT_FIELDS = (
    "folded",             # BIN/UN/INTRIN over constants -> CONST
    "algebraic",          # x+0, x*1, x/1 ... -> MOV / CONST
    "cse_replaced",       # recomputed available expression -> MOV
    "copies_propagated",  # operand rewritten to an equal-valued slot
    "strength_reduced",   # MUL/DIV/MOD by 2**k -> SHL/SHR/AND
    "branches_folded",    # BR on a known constant -> JMP
    "unreachable_removed",  # instructions stranded by branch folding
    "licm_hoisted",       # loop-invariant instruction moved to preheader
    "dead_removed",       # dead definition eliminated
)


class OptimizeStats:
    """Counters of what the pass pipeline did (schema v3's
    ``optimize_stats`` block; also merged into service ``/metrics``)."""

    __slots__ = STAT_FIELDS + ("rounds",)

    def __init__(self):
        for field in STAT_FIELDS:
            setattr(self, field, 0)
        self.rounds = 0

    @property
    def total(self) -> int:
        """Total rewrites across every pass (0 = program unchanged)."""
        return sum(getattr(self, field) for field in STAT_FIELDS)

    def to_dict(self) -> Dict[str, int]:
        out = {field: getattr(self, field) for field in STAT_FIELDS}
        out["rounds"] = self.rounds
        out["total"] = self.total
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join("%s=%d" % (f, getattr(self, f))
                          for f in STAT_FIELDS if getattr(self, f))
        return "<OptimizeStats %s>" % (inner or "clean")


_PASSES = (lvn_function, licm_function, dce_function)


def optimize_function(fn: Function,
                      stats: Optional[OptimizeStats] = None) -> OptimizeStats:
    """Optimize a single function in place (no program-level verify —
    use :func:`optimize_program` for whole programs)."""
    if stats is None:
        stats = OptimizeStats()
    for _ in range(_MAX_ROUNDS):
        changed = False
        for pass_fn in _PASSES:
            changed = pass_fn(fn, stats) or changed
        stats.rounds += 1
        if not changed:
            break
    return stats


def optimize_program(program: Program) -> OptimizeStats:
    """Optimize every function of ``program`` in place.

    ``verify_program`` runs after each pass application, so an invalid
    rewrite is caught immediately with the offending pass on the stack.
    """
    stats = OptimizeStats()
    for _ in range(_MAX_ROUNDS):
        changed = False
        for pass_fn in _PASSES:
            for fn in program.functions.values():
                changed = pass_fn(fn, stats) or changed
            verify_program(program)
        stats.rounds += 1
        if not changed:
            break
    return stats
