"""Scalar bytecode optimizations (the microJIT's cleanup passes).

Section 3.2: "The compiler also performs optimizations and
transformations..." — this module provides the classic scalar trio the
paper's JIT would run before annotation, operating **only on compiler
temporaries** so named-local tracking (and therefore TEST's analyses)
is unaffected:

* block-local **constant folding** of ``BIN``/``UN`` over known temps;
* block-local **copy propagation** through ``MOV`` into temps;
* whole-function **dead-temporary elimination** of pure, unread
  definitions (loads, calls and faulting arithmetic are never removed).

The pass is semantics-preserving by construction: instructions with
observable effects — memory accesses, calls, prints, annotations,
faulting div/mod — are kept, and anything involving named locals is
left untouched.  It is optional in the pipeline (``Jrpm(optimize=True)``)
so the calibrated baselines stay comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import BinOp, Op, UnOp
from repro.bytecode.program import Function, Program
from repro.bytecode.verifier import verify_program
from repro.errors import ExecutionError
from repro.runtime.values import apply_binop, apply_unop


class OptimizeStats:
    """What one optimization run accomplished."""

    def __init__(self):
        self.folded = 0
        self.copies_propagated = 0
        self.dead_removed = 0

    @property
    def total(self) -> int:
        return self.folded + self.copies_propagated + self.dead_removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<OptimizeStats folded=%d copies=%d dead=%d>"
                % (self.folded, self.copies_propagated,
                   self.dead_removed))


def _block_leaders(code: List[Instr]) -> Set[int]:
    leaders = {0}
    for pc, ins in enumerate(code):
        if ins.op == Op.JMP:
            leaders.add(ins.a)
            leaders.add(pc + 1)
        elif ins.op == Op.BR:
            leaders.add(ins.b)
            leaders.add(ins.c)
            leaders.add(pc + 1)
        elif ins.op == Op.RET:
            leaders.add(pc + 1)
    leaders.discard(len(code))
    return leaders


_PURE_DEFS = frozenset([Op.CONST, Op.MOV, Op.UN, Op.LEN])
#: BIN sub-ops that can fault and must survive even if dead
_FAULTING_BIN = frozenset([BinOp.DIV, BinOp.MOD, BinOp.SHL, BinOp.SHR])


def _reads(ins: Instr) -> List[int]:
    op = ins.op
    if op == Op.MOV:
        return [ins.b]
    if op == Op.BIN:
        return [ins.b, ins.c]
    if op == Op.UN:
        return [ins.b]
    if op == Op.NEWARR:
        return [ins.b]
    if op == Op.ALOAD:
        return [ins.b, ins.c]
    if op == Op.ASTORE:
        return [ins.a, ins.b, ins.c]
    if op == Op.LEN:
        return [ins.b]
    if op == Op.BR:
        return [ins.a]
    if op == Op.RET:
        return [ins.a] if ins.a >= 0 else []
    if op in (Op.CALL, Op.INTRIN):
        return list(ins.args)
    if op == Op.PRINT:
        return [ins.a]
    return []


def _writes(ins: Instr) -> Optional[int]:
    if ins.op in (Op.CONST, Op.MOV, Op.BIN, Op.UN, Op.NEWARR, Op.ALOAD,
                  Op.LEN, Op.INTRIN):
        return ins.a
    if ins.op == Op.CALL and ins.a >= 0:
        return ins.a
    return None


def optimize_function(fn: Function,
                      stats: Optional[OptimizeStats] = None
                      ) -> OptimizeStats:
    """Optimize ``fn`` in place; returns the accumulated stats.

    Folding exposes dead temps and removal exposes further folds, so
    the pair runs to a (small) fixed point.
    """
    if stats is None:
        stats = OptimizeStats()
    for _ in range(4):
        before = stats.total
        _fold_and_propagate(fn, stats)
        _remove_dead_temps(fn, stats)
        if stats.total == before:
            break
    return stats


def _fold_and_propagate(fn: Function, stats: OptimizeStats) -> None:
    """Block-local constant folding + copy propagation over temps."""
    code = fn.code
    leaders = _block_leaders(code)
    n_named = fn.n_named

    consts: Dict[int, object] = {}
    copies: Dict[int, int] = {}

    def invalidate(slot: int) -> None:
        consts.pop(slot, None)
        copies.pop(slot, None)
        for key in [k for k, v in copies.items() if v == slot]:
            del copies[key]

    def resolve(slot: int) -> int:
        return copies.get(slot, slot)

    for pc, ins in enumerate(code):
        if pc in leaders:
            consts.clear()
            copies.clear()

        # rewrite operand slots through known copies (temps only)
        if ins.op == Op.BIN:
            ins.b = resolve(ins.b)
            ins.c = resolve(ins.c)
        elif ins.op in (Op.MOV, Op.UN, Op.LEN, Op.NEWARR):
            ins.b = resolve(ins.b)
        elif ins.op == Op.ALOAD:
            ins.b = resolve(ins.b)
            ins.c = resolve(ins.c)
        elif ins.op == Op.ASTORE:
            ins.a = resolve(ins.a)
            ins.b = resolve(ins.b)
            ins.c = resolve(ins.c)
        elif ins.op == Op.BR:
            ins.a = resolve(ins.a)
        elif ins.op == Op.RET and ins.a >= 0:
            ins.a = resolve(ins.a)
        elif ins.op in (Op.CALL, Op.INTRIN):
            ins.args = tuple(resolve(s) for s in ins.args)
        elif ins.op == Op.PRINT:
            ins.a = resolve(ins.a)

        # try to fold
        if ins.op == Op.BIN and ins.b in consts and ins.c in consts:
            try:
                value = apply_binop(ins.sub, consts[ins.b],
                                    consts[ins.c])
            except ExecutionError:
                value = None  # would fault: leave it alone
            if value is not None:
                dst = ins.a
                code[pc] = Instr(Op.CONST, a=dst, imm=value)
                ins = code[pc]
                stats.folded += 1
        elif ins.op == Op.UN and ins.b in consts:
            try:
                value = apply_unop(ins.sub, consts[ins.b])
            except ExecutionError:
                value = None
            if value is not None:
                code[pc] = Instr(Op.CONST, a=ins.a, imm=value)
                ins = code[pc]
                stats.folded += 1

        # update the block-local facts
        w = _writes(ins)
        if w is not None:
            invalidate(w)
            if w >= n_named:
                if ins.op == Op.CONST:
                    consts[w] = ins.imm
                elif ins.op == Op.MOV and ins.b != w:
                    src = resolve(ins.b)
                    if src != w:
                        copies[w] = src
                    if src in consts:
                        consts[w] = consts[src]
                    stats.copies_propagated += 1


def _remove_dead_temps(fn: Function, stats: OptimizeStats) -> None:
    """Drop pure definitions of temps that are never read."""
    code = fn.code
    n_named = fn.n_named
    read: Set[int] = set()
    for ins in code:
        read.update(_reads(ins))

    def removable(ins: Instr) -> bool:
        w = _writes(ins)
        if w is None or w < n_named or w in read:
            return False
        if ins.op in _PURE_DEFS:
            return True
        if ins.op == Op.BIN and BinOp(ins.sub) not in _FAULTING_BIN:
            return True
        return False

    # removing instructions shifts pcs: rebuild with a target remap
    keep = [not removable(ins) for ins in code]
    if all(keep):
        return
    new_pc = {}
    count = 0
    for pc, k in enumerate(keep):
        new_pc[pc] = count
        if k:
            count += 1
    new_pc[len(code)] = count

    new_code: List[Instr] = []
    for pc, ins in enumerate(code):
        if not keep[pc]:
            stats.dead_removed += 1
            continue
        if ins.op == Op.JMP:
            ins.a = new_pc[ins.a]
        elif ins.op == Op.BR:
            ins.b = new_pc[ins.b]
            ins.c = new_pc[ins.c]
        new_code.append(ins)
    fn.code = new_code


def optimize_program(program: Program) -> OptimizeStats:
    """Optimize every function in place; verifies the result."""
    stats = OptimizeStats()
    for fn in program.functions.values():
        optimize_function(fn, stats)
    verify_program(program)
    return stats
