"""The annotating JIT pass (paper Sections 3.2, 5.1, Figure 5, Table 4).

Takes a compiled program plus the STL candidate table and produces a new
program with tracing annotations inserted:

* ``SLOOP id, n`` on every entry edge of a candidate loop;
* ``EOI id`` on every back edge;
* ``ELOOP id`` on every exit edge (and before in-loop ``RET``s, which
  exit every enclosing loop at once);
* ``LWL slot`` before reads and ``SWL slot`` after writes of the loop's
  tracked named locals;
* ``READSTATS id`` after loop exit, to drain the comparator-bank
  counters.

Two annotation levels reproduce Figure 6's two bars per benchmark:

* ``BASE`` — annotate every local read; read statistics at every loop
  exit.
* ``OPTIMIZED`` — the paper's JIT optimizations: only the first local
  read per basic block is annotated (it forms the shortest — critical —
  arc), and statistics reads are hoisted to the outermost loop of a
  single-child nest chain.

All insertions are computed on the pristine CFG first and applied in one
pass, so edge bookkeeping never sees a half-mutated graph.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op
from repro.bytecode.program import Function, Program
from repro.bytecode.verifier import verify_program
from repro.cfg.candidates import CandidateTable, STLCandidate
from repro.cfg.graph import CFG, build_cfg
from repro.cfg.scalar_deps import _reads_of, _writes_of


class AnnotationLevel(enum.Enum):
    """How aggressively to annotate (Figure 6's two configurations)."""

    BASE = "base"
    OPTIMIZED = "optimized"


class AnnotatedProgram:
    """Result of the annotation pass."""

    def __init__(self, program: Program, level: AnnotationLevel,
                 annotated_loops: Dict[int, STLCandidate]):
        #: the instrumented program (run this with a tracer attached)
        self.program = program
        self.level = level
        #: loop id -> candidate, for every loop that received annotations
        self.annotated_loops = annotated_loops


def annotate_program(program: Program, table: CandidateTable,
                     level: AnnotationLevel = AnnotationLevel.OPTIMIZED,
                     loops: Optional[Iterable[int]] = None
                     ) -> AnnotatedProgram:
    """Instrument ``program`` for TEST profiling.

    ``loops`` restricts annotation to the given loop ids (default: every
    non-excluded candidate).  Functions without selected loops are
    copied untouched.
    """
    selected: Set[int] = set(
        loops if loops is not None
        else (c.loop_id for c in table.candidates()))
    selected &= {c.loop_id for c in table.candidates()}  # drop excluded

    out = Program(entry=program.entry)
    annotated: Dict[int, STLCandidate] = {}
    for name in program.functions:
        fn = program.functions[name]
        floops = table.by_function.get(name)
        wanted = [] if floops is None else [
            c for c in floops.candidates
            if c.loop_id in selected]
        if not wanted:
            out.add(_copy_function(fn))
            continue
        out.add(_annotate_function(fn, wanted, level))
        for cand in wanted:
            annotated[cand.loop_id] = cand
    verify_program(out)
    return AnnotatedProgram(out, level, annotated)


def _copy_function(fn: Function) -> Function:
    new = Function(fn.name, fn.n_params)
    new.n_named = fn.n_named
    new.slot_names = dict(fn.slot_names)
    new.code = [ins.copy() for ins in fn.code]
    return new


def _annotate_function(fn: Function, cands: List[STLCandidate],
                       level: AnnotationLevel) -> Function:
    cfg = build_cfg(fn)

    # ---- plan edge payloads on the pristine graph -----------------------
    # payload priority: ELOOP(+READSTATS) < EOI < SLOOP so that an edge
    # that simultaneously exits an inner loop and latches an outer loop
    # fires events in dynamic order.
    edge_payloads: Dict[Tuple[int, int], List[Tuple[int, Instr]]] = {}
    block_pre_ret: Dict[int, List[Tuple[int, Instr]]] = {}

    readstats_home = _plan_readstats_homes(cands, level)

    # sort so ELOOPs of deeper loops precede shallower ones on shared sites
    for cand in sorted(cands, key=lambda c: -c.depth):
        loop = cand.loop
        lid = cand.loop_id
        exit_payload = [Instr(Op.ELOOP, a=lid)]
        for rid in readstats_home.get(lid, ()):
            exit_payload.append(Instr(Op.READSTATS, a=rid))
        for src, dst in loop.exit_edges(cfg):
            edge_payloads.setdefault((src, dst), []).extend(
                (0, ins) for ins in exit_payload)
        # a RET inside the loop exits it too
        for bid in sorted(loop.blocks):
            if cfg.blocks[bid].terminator.op == Op.RET:
                block_pre_ret.setdefault(bid, []).extend(
                    (0, ins.copy()) for ins in exit_payload)

    for cand in cands:
        loop = cand.loop
        lid = cand.loop_id
        for src, dst in loop.back_edges():
            edge_payloads.setdefault((src, dst), []).append(
                (1, Instr(Op.EOI, a=lid)))

    needs_synthetic_entry = False
    for cand in sorted(cands, key=lambda c: c.depth):
        loop = cand.loop
        lid = cand.loop_id
        sloop = Instr(Op.SLOOP, a=lid, b=len(cand.tracked_locals))
        if loop.header == cfg.entry:
            # function entry falls straight into the loop header: a
            # synthetic entry block carries the SLOOP (added at the end)
            needs_synthetic_entry = True
        for src, dst in loop.entry_edges(cfg):
            edge_payloads.setdefault((src, dst), []).append((2, sloop.copy()))

    # ---- local-variable annotations inside blocks ----------------------
    tracked_of_block: Dict[int, Set[int]] = {}
    for cand in cands:
        slots = set(cand.tracked_locals)
        for bid in cand.loop.blocks:
            tracked_of_block.setdefault(bid, set()).update(slots)
    for bid, slots in tracked_of_block.items():
        _instrument_block(cfg.blocks[bid].instrs, slots, level)
    if level is AnnotationLevel.OPTIMIZED:
        _drop_dominated_loads(cfg, cands)

    # ---- apply RET-exit payloads ---------------------------------------
    for bid, payload in block_pre_ret.items():
        ordered = [ins for _prio, ins in
                   sorted(payload, key=lambda t: t[0])]
        cfg.insert_before_terminator(bid, ordered)

    # ---- apply edge payloads --------------------------------------------
    # When the source block ends in an unconditional JMP, the edge is its
    # only successor and the payload can sit inline before the jump — no
    # extra block, no extra jump per iteration (the hardware's annotation
    # instructions are likewise inline, Figure 5).  Conditional edges are
    # split.
    for (src, dst), payload in edge_payloads.items():
        ordered = [ins for _prio, ins in
                   sorted(payload, key=lambda t: t[0])]
        term = cfg.blocks[src].terminator
        if term.op == Op.JMP and term.a == dst:
            cfg.insert_before_terminator(src, ordered)
        else:
            cfg.split_edge(src, dst, ordered)

    # ---- synthetic entry block for loops headed at the entry ------------
    if needs_synthetic_entry:
        payload: List[Instr] = []
        for cand in sorted(cands, key=lambda c: c.depth):
            if cand.loop.header == cfg.entry:
                payload.append(Instr(Op.SLOOP, a=cand.loop_id,
                                     b=len(cand.tracked_locals)))
        new_entry = cfg.new_block(payload + [Instr(Op.JMP, a=cfg.entry)])
        cfg.entry = new_entry

    return cfg.linearize()


def _plan_readstats_homes(cands: List[STLCandidate],
                          level: AnnotationLevel
                          ) -> Dict[int, List[int]]:
    """Which loop's exits read which loops' statistics.

    BASE: each loop reads its own statistics at its own exits.
    OPTIMIZED: within a chain of single-child nesting, all reads are
    hoisted to the outermost loop of the chain (the paper's hoisting
    optimization); forks in the nest stop the hoist.
    """
    by_id = {c.loop_id: c for c in cands}
    homes: Dict[int, List[int]] = {}
    if level is AnnotationLevel.BASE:
        for c in cands:
            homes.setdefault(c.loop_id, []).append(c.loop_id)
        return homes
    for c in cands:
        home = c
        while home.parent_id in by_id:
            parent = by_id[home.parent_id]
            if len([k for k in parent.child_ids if k in by_id]) != 1:
                break
            home = parent
        homes.setdefault(home.loop_id, []).append(c.loop_id)
    return homes


def _drop_dominated_loads(cfg: CFG, cands: List[STLCandidate]) -> None:
    """The paper's "first load in a block **or a loop**" optimization.

    Within one loop, if a block A strictly dominates block B (and both
    belong to the loop), every same-iteration execution of B is preceded
    by A.  So when A already annotates a read (or a write — which makes
    any later read same-thread) of a slot, B's ``LWL`` for that slot is
    redundant: the arc it could detect is never the critical (shortest)
    one.  Applied per innermost enclosing loop; outer-loop arcs are
    still caught because the surviving annotated read executes first in
    the outer iteration too.
    """
    from repro.cfg.dominators import compute_dominators

    dom = compute_dominators(cfg)
    reachable = set(dom.idom)
    inner_of: Dict[int, STLCandidate] = {}
    for cand in sorted(cands, key=lambda c: c.depth):
        for bid in cand.loop.blocks:
            inner_of[bid] = cand  # deepest wins (sorted shallow->deep)

    touched: Dict[int, Set[int]] = {}
    for bid in inner_of:
        touched[bid] = {ins.a for ins in cfg.blocks[bid].instrs
                        if ins.op in (Op.LWL, Op.SWL)}

    for bid, cand in inner_of.items():
        if bid not in reachable:
            continue
        loop_blocks = cand.loop.blocks
        shadowed: Set[int] = set()
        walker = dom.idom.get(bid)
        while walker is not None and walker in loop_blocks:
            if inner_of.get(walker) is cand:
                shadowed |= touched.get(walker, set())
            walker = dom.idom.get(walker)
        if not shadowed:
            continue
        block = cfg.blocks[bid]
        block.instrs = [ins for ins in block.instrs
                        if not (ins.op == Op.LWL and ins.a in shadowed)]


def _instrument_block(instrs: List[Instr], tracked: Set[int],
                      level: AnnotationLevel) -> None:
    """Insert LWL/SWL around accesses to ``tracked`` slots in one block.

    LWL goes before the reading instruction; SWL after the writing one.
    OPTIMIZED annotates only the first read of each slot per block (the
    earliest read forms the shortest — critical — arc, Section 5.1).
    """
    out: List[Instr] = []
    loads_done: Set[int] = set()
    for ins in instrs:
        if ins.op in (Op.LWL, Op.SWL):   # already instrumented (idempotence)
            out.append(ins)
            continue
        reads = [s for s in _reads_of(ins) if s in tracked]
        seen_here: Set[int] = set()
        for slot in reads:
            if slot in seen_here:
                continue
            seen_here.add(slot)
            if level is AnnotationLevel.OPTIMIZED and slot in loads_done:
                continue
            loads_done.add(slot)
            out.append(Instr(Op.LWL, a=slot))
        out.append(ins)
        w = _writes_of(ins)
        if w is not None and w in tracked:
            out.append(Instr(Op.SWL, a=w))
            # a write refreshes the timestamp; a later read in this block
            # hits the same-thread store, so re-annotating it is useless
            loads_done.add(w)
    instrs[:] = out
