"""The microJIT analog: annotation insertion for TEST profiling and
speculative compilation of selected STLs (paper Sections 3.2 and 5.1)."""

from repro.jit.annotate import (
    AnnotatedProgram,
    AnnotationLevel,
    annotate_program,
)
from repro.jit.optimize import (
    OptimizeStats,
    optimize_function,
    optimize_program,
)
from repro.jit.speculative import STLCompilation, compile_stl

__all__ = [
    "AnnotatedProgram",
    "AnnotationLevel",
    "OptimizeStats",
    "STLCompilation",
    "annotate_program",
    "compile_stl",
    "optimize_function",
    "optimize_program",
]
