"""Exhaustive read/write/effect tables over the bytecode ISA.

Every optimizer pass needs to know, for each instruction, which slots
it reads, which slot it writes, and what effects it may have (fault,
observable side effect, heap mutation).  The legacy tables silently
treated unknown opcodes as "reads nothing / writes nothing", which
would turn any future opcode into dead-code bait the moment it was
added.  The tables here are exhaustive over :class:`Op` and raise
:class:`BytecodeError` on an unhandled opcode, so adding an opcode
without teaching the optimizer about it fails loudly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import ANNOTATION_OPS, BinOp, Op, UnOp
from repro.bytecode.program import Function
from repro.bytecode.verifier import BytecodeError

# ---------------------------------------------------------------------------
# read / write slot tables
# ---------------------------------------------------------------------------

_READS: Dict[Op, Callable[[Instr], List[int]]] = {
    Op.CONST: lambda ins: [],
    Op.MOV: lambda ins: [ins.b],
    Op.BIN: lambda ins: [ins.b, ins.c],
    Op.UN: lambda ins: [ins.b],
    Op.NEWARR: lambda ins: [ins.b],
    Op.ALOAD: lambda ins: [ins.b, ins.c],
    Op.ASTORE: lambda ins: [ins.a, ins.b, ins.c],
    Op.LEN: lambda ins: [ins.b],
    Op.JMP: lambda ins: [],
    Op.BR: lambda ins: [ins.a],
    Op.CALL: lambda ins: list(ins.args),
    Op.RET: lambda ins: [] if ins.a < 0 else [ins.a],
    Op.INTRIN: lambda ins: list(ins.args),
    # annotation opcodes: LWL/SWL name the slot they annotate — treat
    # that as a read so no pass ever considers the slot's value dead
    # around an annotation (the tracer observes it).
    Op.SLOOP: lambda ins: [],
    Op.EOI: lambda ins: [],
    Op.ELOOP: lambda ins: [],
    Op.LWL: lambda ins: [ins.a],
    Op.SWL: lambda ins: [ins.a],
    Op.READSTATS: lambda ins: [],
    Op.PRINT: lambda ins: [ins.a],
    Op.NOP: lambda ins: [],
}

_WRITES: Dict[Op, Callable[[Instr], Optional[int]]] = {
    Op.CONST: lambda ins: ins.a,
    Op.MOV: lambda ins: ins.a,
    Op.BIN: lambda ins: ins.a,
    Op.UN: lambda ins: ins.a,
    Op.NEWARR: lambda ins: ins.a,
    Op.ALOAD: lambda ins: ins.a,
    Op.ASTORE: lambda ins: None,
    Op.LEN: lambda ins: ins.a,
    Op.JMP: lambda ins: None,
    Op.BR: lambda ins: None,
    Op.CALL: lambda ins: None if ins.a < 0 else ins.a,
    Op.RET: lambda ins: None,
    Op.INTRIN: lambda ins: ins.a,
    Op.SLOOP: lambda ins: None,
    Op.EOI: lambda ins: None,
    Op.ELOOP: lambda ins: None,
    Op.LWL: lambda ins: None,
    Op.SWL: lambda ins: None,
    Op.READSTATS: lambda ins: None,
    Op.PRINT: lambda ins: None,
    Op.NOP: lambda ins: None,
}


def instr_reads(ins: Instr) -> List[int]:
    """Slots read by ``ins`` (exhaustive; raises on unknown opcodes)."""
    try:
        fn = _READS[ins.op]
    except KeyError:
        raise BytecodeError(
            "instr_reads: unhandled opcode %r — teach "
            "repro.jit.effects about it" % (ins.op,))
    return fn(ins)


def instr_writes(ins: Instr) -> Optional[int]:
    """Slot written by ``ins``, or None (exhaustive; raises on unknown)."""
    try:
        fn = _WRITES[ins.op]
    except KeyError:
        raise BytecodeError(
            "instr_writes: unhandled opcode %r — teach "
            "repro.jit.effects about it" % (ins.op,))
    return fn(ins)


# ---------------------------------------------------------------------------
# effect classification
# ---------------------------------------------------------------------------

#: binary subops where op(a, b) == op(b, a) for every value pair
COMMUTATIVE_BIN = frozenset([
    BinOp.ADD, BinOp.MUL, BinOp.AND, BinOp.OR, BinOp.XOR,
    BinOp.EQ, BinOp.NE,
])

#: binary subops that can raise ExecutionError for some operand values
#: (division by zero, float operands to bitwise ops, negative shifts).
#: A dead instruction with one of these subops must survive DCE and may
#: never be speculatively hoisted past an observable effect.
FAULTING_BIN = frozenset([
    BinOp.DIV, BinOp.MOD, BinOp.SHL, BinOp.SHR,
    BinOp.AND, BinOp.OR, BinOp.XOR,
])

#: binary subops that are total over all runtime values
SAFE_BIN = frozenset(BinOp) - FAULTING_BIN

#: unary subops that can fault (INV on floats; F2I on inf/nan)
FAULTING_UN = frozenset([UnOp.INV, UnOp.F2I])

#: unary subops that are total
SAFE_UN = frozenset(UnOp) - FAULTING_UN

#: opcodes with effects an optimizer must keep in program order:
#: output (PRINT), heap mutation (ASTORE), allocation (NEWARR —
#: handle identity is observable in the final heap snapshot), and
#: calls (arbitrary callee effects).
OBSERVABLE_OPS = frozenset([Op.PRINT, Op.ASTORE, Op.CALL, Op.NEWARR])

#: opcodes that may mutate existing arrays (invalidate loads)
HEAP_WRITERS = frozenset([Op.ASTORE, Op.CALL])


def may_fault(ins: Instr) -> bool:
    """True when ``ins`` can raise at runtime for some operand values."""
    op = ins.op
    if op == Op.BIN:
        return BinOp(ins.sub) in FAULTING_BIN
    if op == Op.UN:
        return UnOp(ins.sub) in FAULTING_UN
    # ALOAD/ASTORE: bounds + handle checks; NEWARR: negative length;
    # LEN: invalid handle; INTRIN: domain errors (sqrt(-1));
    # CALL: anything the callee does.
    return op in (Op.ALOAD, Op.ASTORE, Op.NEWARR, Op.LEN,
                  Op.INTRIN, Op.CALL)


def has_annotations(fn: Function) -> bool:
    """True when ``fn`` carries tracer annotation opcodes.

    Annotated functions are off-limits to every optimizer pass: the
    annotations encode loop entry/exit protocol and tracked-local
    read/write order, and any code motion would desynchronize the
    event stream the tracer analyzes.  (In the normal pipeline the
    optimizer runs strictly before annotation, so this only triggers
    for hand-built programs and barrier tests.)
    """
    return any(ins.op in ANNOTATION_OPS for ins in fn.code)
