"""Opcode definitions for the register-style bytecode ISA.

The ISA is the compilation target of the minijava front-end and the input
to the annotating JIT (:mod:`repro.jit`).  It is deliberately small: the
TEST tracer only observes loop boundaries, heap loads/stores, and named
local-variable accesses, so the ISA needs just enough structure to express
realistic loop nests over scalars and one-dimensional arrays.

Register model
--------------
Each function owns a flat file of *slots*.  Slots ``0..n_named-1`` hold the
function's named local variables (parameters first); slots above that are
compiler temporaries.  The distinction matters to TEST: only named locals
in the calling context of a speculative loop are annotated with
``LWL``/``SWL`` instructions (Section 5.1 of the paper); block-local
temporaries never carry loop dependencies in our codegen.

Annotation opcodes
------------------
``SLOOP``/``EOI``/``ELOOP``/``LWL``/``SWL``/``READSTATS`` mirror Table 4 of
the paper.  They are inserted by :mod:`repro.jit.annotate`, are no-ops for
program semantics, and cost a few cycles each (the source of the 3-25%
profiling slowdown of Figure 6).
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Every opcode understood by the interpreter and verifier."""

    # -- data movement ------------------------------------------------
    CONST = 1        # a=dst slot, imm=constant value
    MOV = 2          # a=dst, b=src

    # -- arithmetic / logic -------------------------------------------
    BIN = 3          # sub=BinOp, a=dst, b=lhs, c=rhs
    UN = 4           # sub=UnOp,  a=dst, b=operand

    # -- heap (arrays) --------------------------------------------------
    NEWARR = 5       # a=dst (handle), b=length slot
    ALOAD = 6        # a=dst, b=array handle slot, c=index slot
    ASTORE = 7       # a=array handle slot, b=index slot, c=src value slot
    LEN = 8          # a=dst, b=array handle slot

    # -- control flow ----------------------------------------------------
    JMP = 9          # a=target pc
    BR = 10          # a=cond slot, b=taken pc, c=not-taken pc
    CALL = 11        # a=dst slot (-1 for void), name=callee, args=slot tuple
    RET = 12         # a=value slot (-1 for void)

    # -- intrinsics -----------------------------------------------------
    INTRIN = 13      # name=intrinsic, a=dst, args=slot tuple

    # -- tracing annotations (Table 4 of the paper) -----------------------
    SLOOP = 20       # a=loop id, b=number of reserved local-var slots
    EOI = 21         # a=loop id
    ELOOP = 22       # a=loop id
    LWL = 23         # a=local slot (annotated local-variable load)
    SWL = 24         # a=local slot (annotated local-variable store)
    READSTATS = 25   # a=loop id (read collected statistics from TEST)

    # -- misc -----------------------------------------------------------
    PRINT = 30       # a=value slot (debugging aid; not used by workloads)
    NOP = 31


class BinOp(enum.IntEnum):
    """Sub-opcodes for :data:`Op.BIN`.  Comparisons produce 0/1 ints."""

    ADD = 1
    SUB = 2
    MUL = 3
    DIV = 4
    MOD = 5
    AND = 6
    OR = 7
    XOR = 8
    SHL = 9
    SHR = 10
    LT = 11
    LE = 12
    GT = 13
    GE = 14
    EQ = 15
    NE = 16


class UnOp(enum.IntEnum):
    """Sub-opcodes for :data:`Op.UN`."""

    NEG = 1
    NOT = 2        # logical not: nonzero -> 0, zero -> 1
    INV = 3        # bitwise complement
    I2F = 4        # int -> float
    F2I = 5        # float -> int (truncating)


#: Intrinsic functions callable through :data:`Op.INTRIN`.  All are pure.
INTRINSICS = frozenset(
    [
        "sqrt",
        "sin",
        "cos",
        "exp",
        "log",
        "abs",
        "min",
        "max",
        "pow",
        "floor",
    ]
)

#: Opcodes with no effect on architectural state (tracing annotations).
ANNOTATION_OPS = frozenset(
    [Op.SLOOP, Op.EOI, Op.ELOOP, Op.LWL, Op.SWL, Op.READSTATS]
)

#: Opcodes that terminate a basic block.
TERMINATORS = frozenset([Op.JMP, Op.BR, Op.RET])

BIN_SYMBOL = {
    BinOp.ADD: "+",
    BinOp.SUB: "-",
    BinOp.MUL: "*",
    BinOp.DIV: "/",
    BinOp.MOD: "%",
    BinOp.AND: "&",
    BinOp.OR: "|",
    BinOp.XOR: "^",
    BinOp.SHL: "<<",
    BinOp.SHR: ">>",
    BinOp.LT: "<",
    BinOp.LE: "<=",
    BinOp.GT: ">",
    BinOp.GE: ">=",
    BinOp.EQ: "==",
    BinOp.NE: "!=",
}

UN_SYMBOL = {
    UnOp.NEG: "-",
    UnOp.NOT: "!",
    UnOp.INV: "~",
    UnOp.I2F: "(float)",
    UnOp.F2I: "(int)",
}
