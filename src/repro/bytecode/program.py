"""Function and program containers for bytecode.

A :class:`Program` is what the minijava front-end produces, what the JIT
annotates, and what the interpreter executes.  Functions carry slot
metadata (how many slots are *named* locals vs. temporaries) because the
TEST annotation pass only instruments named locals (Section 5.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bytecode.instructions import Instr
from repro.errors import BytecodeError


class Function:
    """A single bytecode function.

    Attributes
    ----------
    name:
        Unique function name within the program.
    n_params:
        Number of parameters; parameters occupy slots ``0..n_params-1``.
    n_named:
        Number of named local-variable slots (includes parameters).  Slots
        ``>= n_named`` are compiler temporaries.
    slot_names:
        Map of slot index -> source-level variable name for named slots.
    code:
        The instruction list.  Branch targets are absolute indices into
        this list.
    """

    def __init__(self, name: str, n_params: int = 0):
        self.name = name
        self.n_params = n_params
        self.n_named = n_params
        self.slot_names: Dict[int, str] = {}
        self.code: List[Instr] = []

    @property
    def n_slots(self) -> int:
        """Total slot count required to execute this function."""
        high = self.n_named
        for ins in self.code:
            for slot in (ins.a, ins.b, ins.c):
                if slot + 1 > high:
                    high = slot + 1
            for slot in ins.args:
                if slot + 1 > high:
                    high = slot + 1
        return high

    def slot_name(self, slot: int) -> str:
        """Source name for a slot, or a synthetic ``tN`` / ``sN`` name."""
        if slot in self.slot_names:
            return self.slot_names[slot]
        if slot >= self.n_named:
            return "t%d" % slot
        return "s%d" % slot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Function %s: %d instrs>" % (self.name, len(self.code))


class Program:
    """A compiled program: a set of functions plus an entry point."""

    def __init__(self, entry: str = "main"):
        self.entry = entry
        self.functions: Dict[str, Function] = {}

    def add(self, fn: Function) -> Function:
        """Register ``fn``; names must be unique."""
        if fn.name in self.functions:
            raise BytecodeError("duplicate function %r" % fn.name)
        self.functions[fn.name] = fn
        return fn

    def function(self, name: Optional[str] = None) -> Function:
        """Look up a function (the entry point by default)."""
        key = name if name is not None else self.entry
        try:
            return self.functions[key]
        except KeyError:
            raise BytecodeError("unknown function %r" % key) from None

    @property
    def main(self) -> Function:
        """The entry function."""
        return self.function(self.entry)

    def copy(self) -> "Program":
        """Deep copy (new Function and Instr objects); used by passes
        that rewrite code in place."""
        clone = Program(entry=self.entry)
        for fn in self.functions.values():
            new = Function(fn.name, fn.n_params)
            new.n_named = fn.n_named
            new.slot_names = dict(fn.slot_names)
            new.code = [ins.copy() for ins in fn.code]
            clone.add(new)
        return clone

    def total_instructions(self) -> int:
        """Static instruction count over all functions."""
        return sum(len(f.code) for f in self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Program entry=%s functions=%d instrs=%d>" % (
            self.entry, len(self.functions), self.total_instructions())
