"""Instruction representation.

Instructions are mutable (the JIT rewrites jump targets when it inserts
annotations) but very small: a single class with ``__slots__`` keeps the
interpreter's per-instruction overhead low.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bytecode.opcodes import (
    BIN_SYMBOL,
    UN_SYMBOL,
    BinOp,
    Op,
    UnOp,
)


class Instr:
    """One bytecode instruction.

    Fields are generic operand slots; their meaning depends on ``op`` (see
    :class:`repro.bytecode.opcodes.Op`).  ``imm`` carries constants,
    ``name`` carries callee/intrinsic names, ``args`` carries call argument
    slots.
    """

    __slots__ = ("op", "sub", "a", "b", "c", "imm", "name", "args")

    def __init__(
        self,
        op: Op,
        sub: int = 0,
        a: int = -1,
        b: int = -1,
        c: int = -1,
        imm: object = None,
        name: str = "",
        args: Tuple[int, ...] = (),
    ):
        self.op = op
        self.sub = sub
        self.a = a
        self.b = b
        self.c = c
        self.imm = imm
        self.name = name
        self.args = args

    def copy(self) -> "Instr":
        """Return a shallow copy (used by the annotating JIT)."""
        return Instr(
            self.op, self.sub, self.a, self.b, self.c,
            self.imm, self.name, self.args,
        )

    # -- rendering -----------------------------------------------------

    def render(self, names: Optional[dict] = None) -> str:
        """Human-readable form, used by the disassembler.

        ``names`` optionally maps slot index -> variable name.
        """

        def s(slot: int) -> str:
            if names and slot in names:
                return "%s(s%d)" % (names[slot], slot)
            return "s%d" % slot

        op = self.op
        if op == Op.CONST:
            return "const %s, %r" % (s(self.a), self.imm)
        if op == Op.MOV:
            return "mov %s, %s" % (s(self.a), s(self.b))
        if op == Op.BIN:
            return "bin %s, %s %s %s" % (
                s(self.a), s(self.b), BIN_SYMBOL[BinOp(self.sub)], s(self.c))
        if op == Op.UN:
            return "un %s, %s%s" % (
                s(self.a), UN_SYMBOL[UnOp(self.sub)], s(self.b))
        if op == Op.NEWARR:
            return "newarr %s, len=%s" % (s(self.a), s(self.b))
        if op == Op.ALOAD:
            return "aload %s, %s[%s]" % (s(self.a), s(self.b), s(self.c))
        if op == Op.ASTORE:
            return "astore %s[%s], %s" % (s(self.a), s(self.b), s(self.c))
        if op == Op.LEN:
            return "len %s, %s" % (s(self.a), s(self.b))
        if op == Op.JMP:
            return "jmp @%d" % self.a
        if op == Op.BR:
            return "br %s ? @%d : @%d" % (s(self.a), self.b, self.c)
        if op == Op.CALL:
            dst = s(self.a) + ", " if self.a >= 0 else ""
            return "call %s%s(%s)" % (
                dst, self.name, ", ".join(s(x) for x in self.args))
        if op == Op.RET:
            return "ret %s" % (s(self.a) if self.a >= 0 else "")
        if op == Op.INTRIN:
            return "intrin %s, %s(%s)" % (
                s(self.a), self.name, ", ".join(s(x) for x in self.args))
        if op == Op.SLOOP:
            return "sloop L%d, nlocals=%d" % (self.a, self.b)
        if op == Op.EOI:
            return "eoi L%d" % self.a
        if op == Op.ELOOP:
            return "eloop L%d" % self.a
        if op == Op.LWL:
            return "lwl %s" % s(self.a)
        if op == Op.SWL:
            return "swl %s" % s(self.a)
        if op == Op.READSTATS:
            return "readstats L%d" % self.a
        if op == Op.PRINT:
            return "print %s" % s(self.a)
        if op == Op.NOP:
            return "nop"
        raise AssertionError("unrenderable opcode %r" % (op,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Instr %s>" % self.render()
