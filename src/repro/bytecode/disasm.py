"""Bytecode disassembler — renders functions and programs as text.

Purely a debugging/documentation aid; examples use it to show what the
annotating JIT inserted (the paper's Figure 5 equivalent).
"""

from __future__ import annotations

from typing import List

from repro.bytecode.opcodes import Op
from repro.bytecode.program import Function, Program


def disassemble_function(fn: Function) -> str:
    """Render one function, marking branch targets with ``>``."""
    targets = set()
    for ins in fn.code:
        if ins.op == Op.JMP:
            targets.add(ins.a)
        elif ins.op == Op.BR:
            targets.add(ins.b)
            targets.add(ins.c)
    lines: List[str] = []
    params = ", ".join(fn.slot_name(i) for i in range(fn.n_params))
    lines.append("func %s(%s):  ; %d named locals, %d instrs"
                 % (fn.name, params, fn.n_named, len(fn.code)))
    for pc, ins in enumerate(fn.code):
        marker = ">" if pc in targets else " "
        lines.append("  %s%4d: %s" % (marker, pc, ins.render(fn.slot_names)))
    return "\n".join(lines)


def disassemble(program: Program) -> str:
    """Render a whole program, entry function first."""
    parts = [disassemble_function(program.main)]
    for name in sorted(program.functions):
        if name != program.entry:
            parts.append(disassemble_function(program.functions[name]))
    return "\n\n".join(parts)
