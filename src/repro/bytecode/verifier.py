"""Bytecode verifier.

Checks structural invariants the interpreter, CFG builder, and annotating
JIT rely on.  Run after codegen and after every rewriting pass; a verifier
failure always indicates a library bug, never a user-program bug.
"""

from __future__ import annotations

from typing import List

from repro.bytecode.opcodes import ANNOTATION_OPS, INTRINSICS, BinOp, Op, UnOp
from repro.bytecode.program import Function, Program
from repro.errors import BytecodeError


def find_unreachable(fn: Function) -> List[int]:
    """Program counters that no path from pc 0 can reach.

    Control flows pc+1 except through ``JMP``/``BR`` (explicit targets)
    and ``RET`` (no successor).  Codegen legitimately emits a little
    dead *padding* — a trailing ``RET`` after a body whose every path
    already returns, or ``NOP``s left by rewriting passes — so callers
    that want rejection should filter on opcode (see
    :func:`verify_function`'s ``reject_unreachable``).
    """
    code = fn.code
    n = len(code)
    seen = [False] * n
    work = [0] if n else []
    while work:
        pc = work.pop()
        if pc < 0 or pc >= n or seen[pc]:
            continue
        seen[pc] = True
        op = code[pc].op
        if op == Op.RET:
            continue
        if op == Op.JMP:
            work.append(code[pc].a)
        elif op == Op.BR:
            work.append(code[pc].b)
            work.append(code[pc].c)
        else:
            work.append(pc + 1)
    return [pc for pc in range(n) if not seen[pc]]


#: opcodes tolerated in unreachable positions even under
#: ``reject_unreachable`` (structural padding, not live code):
#: stray ``RET``/``NOP``, plus ``JMP`` — codegen emits a dead join
#: jump after an ``if`` arm whose every path already returned, and a
#: jump computes nothing, so a dead one can never be orphaned work
_DEAD_PADDING_OPS = (Op.RET, Op.NOP, Op.JMP)

#: additionally tolerated in an unreachable *trailing* suffix only:
#: codegen ends every function with an implicit ``return 0`` epilogue
#: (``CONST x, 0; RET x``), dead when every source path returns
_DEAD_EPILOGUE_OPS = (Op.RET, Op.NOP, Op.CONST)


def verify_function(fn: Function, program: Program = None,
                    reject_unreachable: bool = False) -> None:
    """Raise :class:`BytecodeError` if ``fn`` is malformed.

    Invariants checked:

    * code is non-empty and every path ends in a terminator (the last
      instruction is ``RET``/``JMP``/``BR`` so the pc never falls off);
    * branch targets are in range;
    * slot operands are non-negative where required;
    * BIN/UN sub-opcodes are valid;
    * CALL targets exist when ``program`` is provided;
    * intrinsic names are known;
    * annotation instructions reference plausible loop ids / slots;
    * with ``reject_unreachable``, no unreachable block of live
      instructions exists — rewriting passes must not orphan code they
      meant to keep.  Off by default because codegen's dead padding is
      legal: stray ``RET``/``NOP``, dead join jumps after
      returning ``if`` arms, plus the implicit ``return 0`` epilogue
      (``CONST``/``RET`` trailing suffix) emitted after a body whose
      every path returns.  The conformance fuzz campaign turns it on.
    """
    code = fn.code
    if not code:
        raise BytecodeError("%s: empty function body" % fn.name)
    n = len(code)
    last = code[-1]
    if last.op not in (Op.RET, Op.JMP, Op.BR):
        raise BytecodeError(
            "%s: falls off the end (last op %s)" % (fn.name, last.op.name))

    def check_target(pc: int, target: int) -> None:
        if not 0 <= target < n:
            raise BytecodeError(
                "%s: pc=%d branch target %d out of range [0,%d)"
                % (fn.name, pc, target, n))

    def check_slot(pc: int, slot: int, what: str) -> None:
        if slot < 0:
            raise BytecodeError(
                "%s: pc=%d negative %s slot %d" % (fn.name, pc, what, slot))

    for pc, ins in enumerate(code):
        op = ins.op
        if op == Op.CONST:
            check_slot(pc, ins.a, "dst")
            if not isinstance(ins.imm, (int, float)):
                raise BytecodeError(
                    "%s: pc=%d CONST immediate %r is not a number"
                    % (fn.name, pc, ins.imm))
        elif op == Op.MOV:
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "src")
        elif op == Op.BIN:
            try:
                BinOp(ins.sub)
            except ValueError:
                raise BytecodeError(
                    "%s: pc=%d bad BIN sub-opcode %d"
                    % (fn.name, pc, ins.sub)) from None
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "lhs")
            check_slot(pc, ins.c, "rhs")
        elif op == Op.UN:
            try:
                UnOp(ins.sub)
            except ValueError:
                raise BytecodeError(
                    "%s: pc=%d bad UN sub-opcode %d"
                    % (fn.name, pc, ins.sub)) from None
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "src")
        elif op == Op.NEWARR:
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "length")
        elif op == Op.ALOAD:
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "array")
            check_slot(pc, ins.c, "index")
        elif op == Op.ASTORE:
            check_slot(pc, ins.a, "array")
            check_slot(pc, ins.b, "index")
            check_slot(pc, ins.c, "src")
        elif op == Op.LEN:
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "array")
        elif op == Op.JMP:
            check_target(pc, ins.a)
        elif op == Op.BR:
            check_slot(pc, ins.a, "cond")
            check_target(pc, ins.b)
            check_target(pc, ins.c)
        elif op == Op.CALL:
            if program is not None and ins.name not in program.functions:
                raise BytecodeError(
                    "%s: pc=%d call to unknown function %r"
                    % (fn.name, pc, ins.name))
            if program is not None:
                callee = program.functions.get(ins.name)
                if callee is not None and len(ins.args) != callee.n_params:
                    raise BytecodeError(
                        "%s: pc=%d call to %s with %d args, expects %d"
                        % (fn.name, pc, ins.name, len(ins.args),
                           callee.n_params))
            for slot in ins.args:
                check_slot(pc, slot, "arg")
        elif op == Op.INTRIN:
            if ins.name not in INTRINSICS:
                raise BytecodeError(
                    "%s: pc=%d unknown intrinsic %r"
                    % (fn.name, pc, ins.name))
            check_slot(pc, ins.a, "dst")
            for slot in ins.args:
                check_slot(pc, slot, "arg")
        elif op == Op.RET:
            pass  # a may be -1 (void)
        elif op in (Op.SLOOP, Op.EOI, Op.ELOOP, Op.READSTATS):
            if ins.a < 0:
                raise BytecodeError(
                    "%s: pc=%d annotation with negative loop id"
                    % (fn.name, pc))
        elif op in (Op.LWL, Op.SWL):
            check_slot(pc, ins.a, "local")
            if ins.a >= fn.n_named:
                raise BytecodeError(
                    "%s: pc=%d %s annotates temporary slot %d"
                    % (fn.name, pc, op.name, ins.a))
        elif op == Op.PRINT:
            check_slot(pc, ins.a, "src")
        elif op == Op.NOP:
            pass
        else:  # pragma: no cover - exhaustive over Op
            raise BytecodeError(
                "%s: pc=%d unknown opcode %r" % (fn.name, pc, op))

    _check_loop_annotations(fn)

    if reject_unreachable:
        unreachable = find_unreachable(fn)
        deadset = set(unreachable)
        tail = n
        while tail - 1 in deadset \
                and code[tail - 1].op in _DEAD_EPILOGUE_OPS:
            tail -= 1
        dead = [pc for pc in unreachable if pc < tail
                and code[pc].op not in _DEAD_PADDING_OPS]
        if dead:
            raise BytecodeError(
                "%s: unreachable block of live code at pc(s) %s"
                % (fn.name, ", ".join(str(pc) for pc in dead)))


def _check_loop_annotations(fn: Function) -> None:
    """SLOOP/ELOOP must reference consistent loop ids.

    The tracer requires that every ``EOI``/``ELOOP``/``READSTATS`` names a
    loop id that some ``SLOOP`` in the same function also names.  (Proper
    nesting is a dynamic property enforced by the TEST device itself.)
    """
    started = set()
    referenced: List[tuple] = []
    for pc, ins in enumerate(fn.code):
        if ins.op == Op.SLOOP:
            started.add(ins.a)
        elif ins.op in (Op.EOI, Op.ELOOP, Op.READSTATS):
            referenced.append((pc, ins.op, ins.a))
    for pc, op, loop_id in referenced:
        if loop_id not in started:
            raise BytecodeError(
                "%s: pc=%d %s references loop L%d with no SLOOP"
                % (fn.name, pc, op.name, loop_id))


def verify_program(program: Program,
                   reject_unreachable: bool = False) -> None:
    """Verify every function plus program-level invariants."""
    if program.entry not in program.functions:
        raise BytecodeError("missing entry function %r" % program.entry)
    entry = program.functions[program.entry]
    if entry.n_params != 0:
        raise BytecodeError(
            "entry function %r must take no parameters" % program.entry)
    for fn in program.functions.values():
        verify_function(fn, program,
                        reject_unreachable=reject_unreachable)
