"""Bytecode verifier.

Checks structural invariants the interpreter, CFG builder, and annotating
JIT rely on.  Run after codegen and after every rewriting pass; a verifier
failure always indicates a library bug, never a user-program bug.
"""

from __future__ import annotations

from typing import List

from repro.bytecode.opcodes import ANNOTATION_OPS, INTRINSICS, BinOp, Op, UnOp
from repro.bytecode.program import Function, Program
from repro.errors import BytecodeError


def verify_function(fn: Function, program: Program = None) -> None:
    """Raise :class:`BytecodeError` if ``fn`` is malformed.

    Invariants checked:

    * code is non-empty and every path ends in a terminator (the last
      instruction is ``RET``/``JMP``/``BR`` so the pc never falls off);
    * branch targets are in range;
    * slot operands are non-negative where required;
    * BIN/UN sub-opcodes are valid;
    * CALL targets exist when ``program`` is provided;
    * intrinsic names are known;
    * annotation instructions reference plausible loop ids / slots.
    """
    code = fn.code
    if not code:
        raise BytecodeError("%s: empty function body" % fn.name)
    n = len(code)
    last = code[-1]
    if last.op not in (Op.RET, Op.JMP, Op.BR):
        raise BytecodeError(
            "%s: falls off the end (last op %s)" % (fn.name, last.op.name))

    def check_target(pc: int, target: int) -> None:
        if not 0 <= target < n:
            raise BytecodeError(
                "%s: pc=%d branch target %d out of range [0,%d)"
                % (fn.name, pc, target, n))

    def check_slot(pc: int, slot: int, what: str) -> None:
        if slot < 0:
            raise BytecodeError(
                "%s: pc=%d negative %s slot %d" % (fn.name, pc, what, slot))

    for pc, ins in enumerate(code):
        op = ins.op
        if op == Op.CONST:
            check_slot(pc, ins.a, "dst")
            if not isinstance(ins.imm, (int, float)):
                raise BytecodeError(
                    "%s: pc=%d CONST immediate %r is not a number"
                    % (fn.name, pc, ins.imm))
        elif op == Op.MOV:
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "src")
        elif op == Op.BIN:
            try:
                BinOp(ins.sub)
            except ValueError:
                raise BytecodeError(
                    "%s: pc=%d bad BIN sub-opcode %d"
                    % (fn.name, pc, ins.sub)) from None
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "lhs")
            check_slot(pc, ins.c, "rhs")
        elif op == Op.UN:
            try:
                UnOp(ins.sub)
            except ValueError:
                raise BytecodeError(
                    "%s: pc=%d bad UN sub-opcode %d"
                    % (fn.name, pc, ins.sub)) from None
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "src")
        elif op == Op.NEWARR:
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "length")
        elif op == Op.ALOAD:
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "array")
            check_slot(pc, ins.c, "index")
        elif op == Op.ASTORE:
            check_slot(pc, ins.a, "array")
            check_slot(pc, ins.b, "index")
            check_slot(pc, ins.c, "src")
        elif op == Op.LEN:
            check_slot(pc, ins.a, "dst")
            check_slot(pc, ins.b, "array")
        elif op == Op.JMP:
            check_target(pc, ins.a)
        elif op == Op.BR:
            check_slot(pc, ins.a, "cond")
            check_target(pc, ins.b)
            check_target(pc, ins.c)
        elif op == Op.CALL:
            if program is not None and ins.name not in program.functions:
                raise BytecodeError(
                    "%s: pc=%d call to unknown function %r"
                    % (fn.name, pc, ins.name))
            if program is not None:
                callee = program.functions.get(ins.name)
                if callee is not None and len(ins.args) != callee.n_params:
                    raise BytecodeError(
                        "%s: pc=%d call to %s with %d args, expects %d"
                        % (fn.name, pc, ins.name, len(ins.args),
                           callee.n_params))
            for slot in ins.args:
                check_slot(pc, slot, "arg")
        elif op == Op.INTRIN:
            if ins.name not in INTRINSICS:
                raise BytecodeError(
                    "%s: pc=%d unknown intrinsic %r"
                    % (fn.name, pc, ins.name))
            check_slot(pc, ins.a, "dst")
            for slot in ins.args:
                check_slot(pc, slot, "arg")
        elif op == Op.RET:
            pass  # a may be -1 (void)
        elif op in (Op.SLOOP, Op.EOI, Op.ELOOP, Op.READSTATS):
            if ins.a < 0:
                raise BytecodeError(
                    "%s: pc=%d annotation with negative loop id"
                    % (fn.name, pc))
        elif op in (Op.LWL, Op.SWL):
            check_slot(pc, ins.a, "local")
            if ins.a >= fn.n_named:
                raise BytecodeError(
                    "%s: pc=%d %s annotates temporary slot %d"
                    % (fn.name, pc, op.name, ins.a))
        elif op == Op.PRINT:
            check_slot(pc, ins.a, "src")
        elif op == Op.NOP:
            pass
        else:  # pragma: no cover - exhaustive over Op
            raise BytecodeError(
                "%s: pc=%d unknown opcode %r" % (fn.name, pc, op))

    _check_loop_annotations(fn)


def _check_loop_annotations(fn: Function) -> None:
    """SLOOP/ELOOP must reference consistent loop ids.

    The tracer requires that every ``EOI``/``ELOOP``/``READSTATS`` names a
    loop id that some ``SLOOP`` in the same function also names.  (Proper
    nesting is a dynamic property enforced by the TEST device itself.)
    """
    started = set()
    referenced: List[tuple] = []
    for pc, ins in enumerate(fn.code):
        if ins.op == Op.SLOOP:
            started.add(ins.a)
        elif ins.op in (Op.EOI, Op.ELOOP, Op.READSTATS):
            referenced.append((pc, ins.op, ins.a))
    for pc, op, loop_id in referenced:
        if loop_id not in started:
            raise BytecodeError(
                "%s: pc=%d %s references loop L%d with no SLOOP"
                % (fn.name, pc, op.name, loop_id))


def verify_program(program: Program) -> None:
    """Verify every function plus program-level invariants."""
    if program.entry not in program.functions:
        raise BytecodeError("missing entry function %r" % program.entry)
    entry = program.functions[program.entry]
    if entry.n_params != 0:
        raise BytecodeError(
            "entry function %r must take no parameters" % program.entry)
    for fn in program.functions.values():
        verify_function(fn, program)
