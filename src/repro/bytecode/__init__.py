"""Register-style bytecode ISA: the compilation target for minijava.

Public surface:

* :class:`~repro.bytecode.opcodes.Op`, :class:`~repro.bytecode.opcodes.BinOp`,
  :class:`~repro.bytecode.opcodes.UnOp` — opcode enums.
* :class:`~repro.bytecode.instructions.Instr` — one instruction.
* :class:`~repro.bytecode.program.Function`,
  :class:`~repro.bytecode.program.Program` — containers.
* :class:`~repro.bytecode.builder.FunctionBuilder` — assembler-style builder.
* :func:`~repro.bytecode.verifier.verify_program` — structural checks.
* :func:`~repro.bytecode.disasm.disassemble` — pretty printer.
"""

from repro.bytecode.builder import FunctionBuilder, Label
from repro.bytecode.disasm import disassemble, disassemble_function
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import (
    ANNOTATION_OPS,
    BIN_SYMBOL,
    INTRINSICS,
    TERMINATORS,
    BinOp,
    Op,
    UnOp,
)
from repro.bytecode.program import Function, Program
from repro.bytecode.verifier import (
    find_unreachable,
    verify_function,
    verify_program,
)

__all__ = [
    "ANNOTATION_OPS",
    "BIN_SYMBOL",
    "BinOp",
    "Function",
    "FunctionBuilder",
    "INTRINSICS",
    "Instr",
    "Label",
    "Op",
    "Program",
    "TERMINATORS",
    "UnOp",
    "disassemble",
    "disassemble_function",
    "find_unreachable",
    "verify_function",
    "verify_program",
]
