"""Assembler-style builder for bytecode functions.

The builder is the back half of the code generator: it manages labels,
slot allocation (named locals vs. temporaries), and fix-ups of forward
branch targets.  Tests and small examples also use it directly to write
bytecode without going through the minijava front-end.

Example
-------
>>> b = FunctionBuilder("main")
>>> i = b.named_local("i")
>>> b.const(i, 0)
>>> top = b.label()
>>> b.mark(top)
>>> cond = b.temp()
>>> limit = b.temp()
>>> b.const(limit, 10)
>>> b.binop(BinOp.LT, cond, i, limit)
>>> done = b.label()
>>> body = b.label()
>>> b.br(cond, body, done)
>>> b.mark(body)
>>> one = b.temp()
>>> b.const(one, 1)
>>> b.binop(BinOp.ADD, i, i, one)
>>> b.jmp(top)
>>> b.mark(done)
>>> b.ret()
>>> fn = b.build()
>>> fn.n_named
1
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import BinOp, INTRINSICS, Op, UnOp
from repro.bytecode.program import Function
from repro.errors import CodegenError


class Label:
    """A branch target; resolved to a pc when :meth:`FunctionBuilder.mark` runs."""

    __slots__ = ("pc", "ident")

    def __init__(self, ident: int):
        self.pc: int = -1
        self.ident = ident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Label %d pc=%d>" % (self.ident, self.pc)


class FunctionBuilder:
    """Builds a :class:`repro.bytecode.program.Function` incrementally."""

    def __init__(self, name: str, params: Tuple[str, ...] = ()):
        self._fn = Function(name, n_params=len(params))
        self._fn.n_named = 0  # grows as named_local() allocates
        self._named: Dict[str, int] = {}
        self._labels: List[Label] = []
        self._fixups: List[Tuple[int, str, Label]] = []
        self._next_slot = 0
        self._built = False
        for p in params:
            self.named_local(p)

    # -- slots -----------------------------------------------------------

    def named_local(self, name: str) -> int:
        """Allocate (or return) the slot of a named local variable.

        Named locals must all be allocated before the first temporary so
        they occupy a contiguous prefix of the slot file.
        """
        if name in self._named:
            return self._named[name]
        if self._next_slot != self._fn.n_named:
            raise CodegenError(
                "named local %r allocated after temporaries" % name)
        slot = self._next_slot
        self._next_slot += 1
        self._named[name] = slot
        self._fn.n_named = self._next_slot
        self._fn.slot_names[slot] = name
        return slot

    def temp(self) -> int:
        """Allocate a fresh temporary slot."""
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def lookup(self, name: str) -> int:
        """Slot of a previously allocated named local."""
        try:
            return self._named[name]
        except KeyError:
            raise CodegenError("unknown local %r" % name) from None

    # -- labels ----------------------------------------------------------

    def label(self) -> Label:
        """Create an unmarked label."""
        lab = Label(len(self._labels))
        self._labels.append(lab)
        return lab

    def mark(self, label: Label) -> None:
        """Bind ``label`` to the current pc."""
        if label.pc != -1:
            raise CodegenError("label %d marked twice" % label.ident)
        label.pc = len(self._fn.code)

    @property
    def pc(self) -> int:
        """Current instruction index (where the next emit lands)."""
        return len(self._fn.code)

    # -- emission ----------------------------------------------------------

    def _emit(self, ins: Instr) -> int:
        if self._built:
            raise CodegenError("builder already finished")
        self._fn.code.append(ins)
        return len(self._fn.code) - 1

    def const(self, dst: int, value) -> None:
        """``dst = value`` (int or float immediate)."""
        self._emit(Instr(Op.CONST, a=dst, imm=value))

    def mov(self, dst: int, src: int) -> None:
        """``dst = src``."""
        self._emit(Instr(Op.MOV, a=dst, b=src))

    def binop(self, op: BinOp, dst: int, lhs: int, rhs: int) -> None:
        """``dst = lhs <op> rhs``."""
        self._emit(Instr(Op.BIN, sub=int(op), a=dst, b=lhs, c=rhs))

    def unop(self, op: UnOp, dst: int, src: int) -> None:
        """``dst = <op> src``."""
        self._emit(Instr(Op.UN, sub=int(op), a=dst, b=src))

    def newarr(self, dst: int, length: int) -> None:
        """``dst = new array[slot length]``."""
        self._emit(Instr(Op.NEWARR, a=dst, b=length))

    def aload(self, dst: int, arr: int, idx: int) -> None:
        """``dst = arr[idx]`` — a traced heap load."""
        self._emit(Instr(Op.ALOAD, a=dst, b=arr, c=idx))

    def astore(self, arr: int, idx: int, src: int) -> None:
        """``arr[idx] = src`` — a traced heap store."""
        self._emit(Instr(Op.ASTORE, a=arr, b=idx, c=src))

    def length(self, dst: int, arr: int) -> None:
        """``dst = len(arr)``."""
        self._emit(Instr(Op.LEN, a=dst, b=arr))

    def jmp(self, target: Label) -> None:
        """Unconditional jump."""
        pc = self._emit(Instr(Op.JMP))
        self._fixups.append((pc, "a", target))

    def br(self, cond: int, taken: Label, not_taken: Label) -> None:
        """Two-target conditional branch on ``cond != 0``."""
        pc = self._emit(Instr(Op.BR, a=cond))
        self._fixups.append((pc, "b", taken))
        self._fixups.append((pc, "c", not_taken))

    def call(self, dst: int, name: str, args: Tuple[int, ...]) -> None:
        """Call ``name``; ``dst=-1`` discards the return value."""
        self._emit(Instr(Op.CALL, a=dst, name=name, args=tuple(args)))

    def intrin(self, dst: int, name: str, args: Tuple[int, ...]) -> None:
        """Call a pure intrinsic (sqrt, sin, ...)."""
        if name not in INTRINSICS:
            raise CodegenError("unknown intrinsic %r" % name)
        self._emit(Instr(Op.INTRIN, a=dst, name=name, args=tuple(args)))

    def ret(self, src: int = -1) -> None:
        """Return, optionally with a value."""
        self._emit(Instr(Op.RET, a=src))

    def print_(self, src: int) -> None:
        """Debug print of a slot."""
        self._emit(Instr(Op.PRINT, a=src))

    def nop(self) -> None:
        """Emit a NOP (used as an annotation placeholder in tests)."""
        self._emit(Instr(Op.NOP))

    # -- finish ------------------------------------------------------------

    def build(self) -> Function:
        """Resolve branch fix-ups and return the finished function."""
        if self._built:
            raise CodegenError("builder already finished")
        for pc, field, label in self._fixups:
            if label.pc == -1:
                raise CodegenError(
                    "label %d used at pc=%d but never marked"
                    % (label.ident, pc))
            setattr(self._fn.code[pc], field, label.pc)
        self._built = True
        return self._fn
