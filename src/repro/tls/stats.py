"""Program-level aggregation of TLS simulation results (Figure 11).

Combines the per-STL :class:`~repro.tls.simulator.TLSResult`s with the
selection's serial remainder into whole-program predicted-vs-actual
numbers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.tls.simulator import TLSResult
from repro.tracer.selector import SelectionResult


class ProgramTLSOutcome:
    """Whole-program speculative execution summary."""

    def __init__(self, selection: SelectionResult,
                 results: Dict[int, TLSResult]):
        self.selection = selection
        #: loop id -> simulated TLS result for every selected STL
        self.results = results

    @property
    def total_cycles(self) -> int:
        return self.selection.total_cycles

    @property
    def actual_cycles(self) -> float:
        """Serial remainder plus simulated parallel time of each STL."""
        covered_seq = 0
        parallel = 0
        for res in self.results.values():
            covered_seq += res.sequential_cycles
            parallel += res.parallel_cycles
        serial = max(0, self.total_cycles - covered_seq)
        return serial + parallel

    @property
    def actual_speedup(self) -> float:
        actual = self.actual_cycles
        return self.total_cycles / actual if actual > 0 else 1.0

    @property
    def predicted_speedup(self) -> float:
        return self.selection.predicted_speedup

    @property
    def predicted_normalized_time(self) -> float:
        """Figure 11's 'Predicted' bar (1.0 = sequential)."""
        return 1.0 / self.predicted_speedup if self.predicted_speedup \
            else 1.0

    @property
    def actual_normalized_time(self) -> float:
        """Figure 11's 'Actual' bar (1.0 = sequential)."""
        return 1.0 / self.actual_speedup if self.actual_speedup else 1.0

    @property
    def total_violations(self) -> int:
        return sum(r.violations for r in self.results.values())

    @property
    def total_overflows(self) -> int:
        return sum(r.overflows for r in self.results.values())

    def per_stl_rows(self) -> List[tuple]:
        """(loop id, seq cycles, predicted speedup, actual speedup,
        violations/thread) per selected STL, by coverage."""
        rows = []
        for sel in self.selection.selected:
            res = self.results.get(sel.loop_id)
            rows.append((
                sel.loop_id,
                sel.sequential_cycles,
                sel.estimate.speedup,
                res.speedup if res else float("nan"),
                res.violation_rate if res else float("nan"),
            ))
        return rows
