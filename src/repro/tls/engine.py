"""The columnar trace engine: memoized TLS analysis kernels plus
observability.

One :class:`TraceEngine` wraps one
:class:`~repro.runtime.events.ColumnarRecording` and serves every
analysis the back half of the Jrpm pipeline runs against it:

* ``split(loop_id)`` — zero-copy thread windowing, computed once per
  loop (the shared cycle index is the sorted ``cycles`` column itself);
* ``prepare(view, eliminated)`` — per-thread classification (drop
  eliminated locals, own-store forwarding, heap projection), memoized
  per ``(thread window, eliminated-slot set)``;
* ``overflow(view, heap_seq, config)`` — first speculative-buffer
  overflow, memoized per ``(thread window, Table 1 buffer geometry)``.

The memo keys are *projections* of what each kernel actually reads —
the same trick :mod:`repro.jrpm.cache` plays with
``profile_config_key`` — so a configuration sweep that only moves
``n_cpus`` or the Table 2 overheads re-resolves dependencies without
re-decoding a single event, and a buffer-geometry sweep re-runs only
the overflow model.

Every kernel records wall-clock and hit/miss counters into
:class:`TraceEngineStats`; the ``jrpm`` CLI prints them and
``bench_perf_pipeline`` persists them into ``BENCH_pipeline.json``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jit.speculative import STLCompilation
from repro.runtime.events import ColumnarRecording
from repro.tls.simulator import (
    TLSResult,
    TLSSimulator,
    overflow_point,
    prepare_view,
)
from repro.tls.thread_trace import EntryTrace, ThreadView, split_trace

#: kernel names, in pipeline order
KERNELS = ("split", "classify", "overflow", "resolve")


class TraceEngineStats:
    """Per-phase wall-clock and kernel hit/miss counters."""

    def __init__(self):
        self.seconds: Dict[str, float] = {k: 0.0 for k in KERNELS}
        self.calls: Dict[str, int] = {k: 0 for k in KERNELS}
        self.hits: Dict[str, int] = {k: 0 for k in KERNELS}
        self.misses: Dict[str, int] = {k: 0 for k in KERNELS}

    # -- accounting ------------------------------------------------------

    def _kernel_seconds(self) -> float:
        return (self.seconds["split"] + self.seconds["classify"]
                + self.seconds["overflow"])

    @contextmanager
    def timed_exclusive(self, phase: str):
        """Time a phase, excluding kernel time accrued inside it (the
        simulator's scheduling loop invokes the memoized kernels; their
        time is already booked under their own phases)."""
        t0 = time.perf_counter()
        kernels0 = self._kernel_seconds()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self.seconds[phase] += max(
                0.0, elapsed - (self._kernel_seconds() - kernels0))
            self.calls[phase] += 1

    def hit_rate(self, kernel: str) -> float:
        total = self.hits[kernel] + self.misses[kernel]
        return self.hits[kernel] / total if total else 0.0

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly counters, per kernel."""
        out: Dict[str, Dict[str, float]] = {}
        for k in KERNELS:
            out[k] = {
                "seconds": round(self.seconds[k], 6),
                "calls": self.calls[k],
                "hits": self.hits[k],
                "misses": self.misses[k],
            }
        return out

    def render(self) -> str:
        """One-line-per-kernel summary for CLI output."""
        lines = ["%-10s %10s %8s %8s %8s" % (
            "phase", "seconds", "calls", "hits", "misses")]
        for k in KERNELS:
            lines.append("%-10s %10.4f %8d %8d %8d" % (
                k, self.seconds[k], self.calls[k], self.hits[k],
                self.misses[k]))
        return "\n".join(lines)


def overflow_config_key(config: HydraConfig) -> tuple:
    """The overflow kernel's projection of a Hydra configuration: the
    Table 1 buffer geometry, nothing else."""
    return (config.load_buffer_lines, config.load_buffer_assoc,
            config.store_buffer_lines)


class TraceEngine:
    """Memoized analysis kernels over one columnar recording."""

    def __init__(self, recording: ColumnarRecording):
        if not isinstance(recording, ColumnarRecording):
            raise SimulationError(
                "TraceEngine requires a ColumnarRecording; got %s"
                % type(recording).__name__)
        self.recording = recording
        self.stats = TraceEngineStats()
        self._splits: Dict[int, List[EntryTrace]] = {}
        #: (entry key, eliminated) -> tuple of per-thread PreparedEvents
        self._prepared: Dict[tuple, tuple] = {}
        #: (entry key, buffer geometry) -> tuple of overflow rels
        self._overflows: Dict[tuple, tuple] = {}

    # -- kernels ---------------------------------------------------------

    def split(self, loop_id: int) -> List[EntryTrace]:
        """Entry/thread windows of one loop, computed once per loop."""
        stats = self.stats
        entries = self._splits.get(loop_id)
        if entries is not None:
            stats.hits["split"] += 1
            stats.calls["split"] += 1
            return entries
        stats.misses["split"] += 1
        t0 = time.perf_counter()
        entries = split_trace(self.recording, loop_id)
        stats.seconds["split"] += time.perf_counter() - t0
        stats.calls["split"] += 1
        self._splits[loop_id] = entries
        return entries

    @staticmethod
    def _entry_key(loop_id: int, entry: EntryTrace) -> tuple:
        """Structural identity of one entry's window partition: thread
        windows are contiguous, so the outermost index range plus the
        thread count pins them down within one loop's split."""
        threads = entry.threads
        if not threads:
            return (loop_id, -1, -1, -1, 0)
        first = threads[0]
        return (loop_id, first.lo, threads[-1].hi, first.start,
                len(threads))

    def prepare_entry(self, loop_id: int, entry: EntryTrace,
                      eliminated: frozenset) -> tuple:
        """Memoized classification of every thread of one entry.

        Returns a tuple of :data:`~repro.tls.simulator.PreparedEvents`
        aligned with ``entry.threads``.  Entry-granular memoization
        keeps the per-sweep-point overhead to one dictionary probe per
        entry instead of one per thread.
        """
        stats = self.stats
        key = self._entry_key(loop_id, entry) + (eliminated,)
        prepared = self._prepared.get(key)
        if prepared is not None:
            stats.hits["classify"] += 1
            stats.calls["classify"] += 1
            return prepared
        stats.misses["classify"] += 1
        t0 = time.perf_counter()
        prepared = tuple(prepare_view(view, eliminated)
                         for view in entry.threads)
        stats.seconds["classify"] += time.perf_counter() - t0
        stats.calls["classify"] += 1
        self._prepared[key] = prepared
        return prepared

    def overflow_entry(self, loop_id: int, entry: EntryTrace,
                       prepared: tuple, config: HydraConfig) -> tuple:
        """Memoized overflow points of every thread of one entry, for
        one Table 1 buffer geometry (the key projects the config onto
        the geometry fields, so speed sweeps hit)."""
        stats = self.stats
        key = (self._entry_key(loop_id, entry)
               + overflow_config_key(config))
        points = self._overflows.get(key)
        if points is not None:
            stats.hits["overflow"] += 1
            stats.calls["overflow"] += 1
            return points
        stats.misses["overflow"] += 1
        t0 = time.perf_counter()
        points = tuple(overflow_point(p[2], config) for p in prepared)
        stats.seconds["overflow"] += time.perf_counter() - t0
        stats.calls["overflow"] += 1
        self._overflows[key] = points
        return points

    # -- convenience -----------------------------------------------------

    def simulate(self, compilation: STLCompilation,
                 config: HydraConfig = DEFAULT_HYDRA) -> TLSResult:
        """Split + simulate one STL with every kernel memoized."""
        entries = self.split(compilation.loop_id)
        return TLSSimulator(compilation, config, engine=self) \
            .simulate(entries)
