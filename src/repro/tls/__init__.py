"""Trace-driven TLS execution simulator: validates TEST's predictions
by actually scheduling the selected STLs' threads on the Hydra model
(the "Actual" series of Figure 11)."""

from repro.tls.engine import TraceEngine, TraceEngineStats
from repro.tls.simulator import (
    EntryResult,
    TLSResult,
    TLSSimulator,
    simulate_stl,
)
from repro.tls.stats import ProgramTLSOutcome
from repro.tls.thread_trace import (
    EntryTrace,
    ThreadEvent,
    ThreadTrace,
    ThreadView,
    local_frame_of,
    local_slot_of,
    split_trace,
)

__all__ = [
    "EntryResult",
    "EntryTrace",
    "ProgramTLSOutcome",
    "TLSResult",
    "TLSSimulator",
    "ThreadEvent",
    "ThreadTrace",
    "ThreadView",
    "TraceEngine",
    "TraceEngineStats",
    "local_frame_of",
    "local_slot_of",
    "simulate_stl",
    "split_trace",
]
