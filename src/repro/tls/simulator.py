"""Trace-driven TLS timing simulator for Hydra (the "Actual" series of
Figure 11).

Given the thread traces of one selected STL and its speculative
compilation summary, the simulator schedules the threads over the CMP's
``p`` CPUs under Hydra's rules:

* threads are dispatched in sequential order, round-robin over CPUs; a
  CPU is busy until its previous thread *commits* (speculative state
  must drain first);
* a RAW violation — a speculative thread loaded an address before an
  earlier thread's store to it — restarts the consumer at the store
  time plus the Table 2 violation/restart penalty;
* compiler-eliminated locals (inductors, reductions, invariants) never
  conflict; globalized (forwarded) locals synchronize with the
  store-load communication delay instead of violating;
* loads a thread's own store already covered do not violate (the store
  buffer forwards them);
* per-thread speculative state is tracked in a true 4-way LRU model of
  the L1 read state and a fully associative store-buffer model; when a
  thread overflows, it stalls at the overflow point until it becomes the
  head (non-speculative) thread;
* threads commit in order; loop startup/shutdown and per-thread EOI
  overheads from Table 2 are charged.

Because the estimator works from *averaged* statistics while this
simulator replays the *actual* per-iteration behaviour (thread-size
variance, real violation timing, associativity), their disagreement
reproduces the imprecision effects of Section 6.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.hydra.cache import FullyAssocBuffer, SetAssocCache
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jit.speculative import STLCompilation
from repro.runtime.heap import line_of
from repro.tls.thread_trace import (
    EntryTrace,
    ThreadTrace,
    local_frame_of,
    local_slot_of,
)


class EntryResult:
    """Timing outcome of one STL entry under TLS."""

    __slots__ = ("parallel_cycles", "sequential_cycles", "violations",
                 "overflows", "threads")

    def __init__(self, parallel_cycles: int, sequential_cycles: int,
                 violations: int, overflows: int, threads: int):
        self.parallel_cycles = parallel_cycles
        self.sequential_cycles = sequential_cycles
        self.violations = violations
        self.overflows = overflows
        self.threads = threads


class TLSResult:
    """Aggregate TLS outcome for one STL across all its entries."""

    def __init__(self, loop_id: int):
        self.loop_id = loop_id
        self.parallel_cycles = 0
        self.sequential_cycles = 0
        self.violations = 0
        self.overflows = 0
        self.threads = 0
        self.entries = 0

    def add(self, entry: EntryResult) -> None:
        self.parallel_cycles += entry.parallel_cycles
        self.sequential_cycles += entry.sequential_cycles
        self.violations += entry.violations
        self.overflows += entry.overflows
        self.threads += entry.threads
        self.entries += 1

    @property
    def speedup(self) -> float:
        """Measured speculative speedup over sequential execution."""
        if self.parallel_cycles <= 0:
            return 1.0
        return self.sequential_cycles / self.parallel_cycles

    @property
    def violation_rate(self) -> float:
        """Violations per thread."""
        return self.violations / self.threads if self.threads else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<TLSResult L%d %.2fx viol/thread=%.3f ovf=%d>"
                % (self.loop_id, self.speedup, self.violation_rate,
                   self.overflows))


class TLSSimulator:
    """Schedules one STL's thread traces onto the speculative CMP."""

    def __init__(self, compilation: STLCompilation,
                 config: HydraConfig = DEFAULT_HYDRA):
        self.compilation = compilation
        self.config = config

    # -- public API ----------------------------------------------------------

    def simulate(self, entries: List[EntryTrace]) -> TLSResult:
        """Simulate every entry of the STL."""
        result = TLSResult(self.compilation.loop_id)
        for entry in entries:
            result.add(self.simulate_entry(entry))
        return result

    def simulate_entry(self, entry: EntryTrace) -> EntryResult:
        cfg = self.config
        comp = self.compilation
        p = cfg.n_cpus
        threads = entry.threads
        n = len(threads)
        if n == 0:
            return EntryResult(0, entry.total_cycles, 0, 0, 0)

        #: address -> (producer thread index, absolute store time, local?)
        last_store: Dict[int, Tuple[int, int, bool]] = {}
        cpu_free = [0] * p
        commit_prev = 0
        clock0 = cfg.startup_overhead  # loop startup before thread 0
        prev_start = clock0
        violations = 0
        overflows = 0

        for j, thread in enumerate(threads):
            classified = self._classify_events(thread, entry.frame_id)
            base = max(cpu_free[j % p], prev_start)
            if j == 0:
                base = max(base, clock0)
            start, restarts = self._resolve_start(
                base, classified, last_store, j)
            violations += restarts

            overflow_at = self._overflow_point(classified)
            eoi = cfg.eoi_overhead
            if overflow_at is None:
                finish = start + thread.size + eoi
            else:
                overflows += 1
                # stall at the overflow point until head, then drain
                resume = max(start + overflow_at, commit_prev)
                finish = resume + (thread.size - overflow_at) + eoi

            commit = max(finish, commit_prev)
            commit_prev = commit
            cpu_free[j % p] = commit
            prev_start = start

            # publish this thread's stores for later consumers
            for rel, kind, addr, is_local in classified:
                if kind == "st":
                    last_store[addr] = (j, start + rel, is_local)

        parallel = commit_prev + cfg.shutdown_overhead
        return EntryResult(parallel, entry.total_cycles,
                           violations, overflows, n)

    # -- internals ------------------------------------------------------------

    def _classify_events(self, thread: ThreadTrace, frame_id: int
                         ) -> List[Tuple[int, str, int, bool]]:
        """Normalize events to (rel, 'ld'|'st', address, is_local),
        dropping compiler-eliminated local accesses."""
        comp = self.compilation
        out: List[Tuple[int, str, int, bool]] = []
        for rel, kind, addr in thread.events:
            if kind == "ld":
                out.append((rel, "ld", addr, False))
            elif kind == "st":
                out.append((rel, "st", addr, False))
            else:
                slot = local_slot_of(addr)
                if slot is None:
                    continue
                if comp.is_eliminated_local(local_frame_of(addr), slot):
                    continue
                out.append((rel, "ld" if kind == "lld" else "st",
                            addr, True))
        return out

    def _resolve_start(self, base: int,
                       events: List[Tuple[int, str, int, bool]],
                       last_store: Dict[int, Tuple[int, int, bool]],
                       j: int) -> Tuple[int, int]:
        """Earliest start time satisfying all cross-thread dependencies,
        counting restarts for heap violations."""
        cfg = self.config
        start = base
        restarts = 0
        # constraints: (load rel, store abs time, is_local)
        constraints: List[Tuple[int, int, bool]] = []
        own: set = set()
        for rel, kind, addr, is_local in events:
            if kind == "st":
                own.add(addr)
                continue
            if addr in own:
                continue  # forwarded from this thread's own store buffer
            prod = last_store.get(addr)
            if prod is None or prod[0] >= j:
                continue
            constraints.append((rel, prod[1], is_local))

        synchronize_heap = self.compilation.synchronize_heap
        # forwarded locals — and, with the Section 6.3 synchronization
        # optimization, heap dependences too — wait for the producer
        # plus the store-load communication delay instead of violating
        for rel, store_abs, is_local in constraints:
            if is_local or synchronize_heap:
                need = store_abs + cfg.store_load_comm_overhead - rel
                if need > start:
                    start = need
        if synchronize_heap:
            return start, restarts

        # Heap dependencies: a violation fires when the producing store
        # executes and the consumer has already read the address; the
        # consumer restarts *then* (store time + restart penalty) and
        # re-executes, so later loads land later and may no longer
        # violate.  Each restart strictly raises the start time, so this
        # converges; the guard only protects against a modelling bug.
        heap_deps = [(rel, store_abs)
                     for rel, store_abs, is_local in constraints
                     if not is_local]
        guard = 0
        while True:
            guard += 1
            if guard > 100_000:  # pragma: no cover - safety net
                raise SimulationError(
                    "violation resolution did not converge")
            violated = [store_abs for rel, store_abs in heap_deps
                        if start + rel < store_abs]
            if not violated:
                break
            restarts += 1
            start = min(violated) + cfg.violation_restart_overhead
        return start, restarts

    def _overflow_point(self, events: List[Tuple[int, str, int, bool]]
                        ) -> Optional[int]:
        """Thread-relative cycle of the first speculative-buffer
        overflow, if any (true associativity modelled)."""
        cfg = self.config
        cache = SetAssocCache(cfg.load_buffer_lines, cfg.load_buffer_assoc)
        store_buf = FullyAssocBuffer(cfg.store_buffer_lines)
        for rel, kind, addr, is_local in events:
            if is_local:
                continue  # locals live in registers / the stack frame
            line = line_of(addr)
            if kind == "ld":
                if cache.touch(line):
                    return rel
            else:
                if store_buf.touch(line):
                    return rel
        return None


def simulate_stl(compilation: STLCompilation, entries: List[EntryTrace],
                 config: HydraConfig = DEFAULT_HYDRA) -> TLSResult:
    """One-call wrapper: simulate all entries of one selected STL."""
    return TLSSimulator(compilation, config).simulate(entries)
