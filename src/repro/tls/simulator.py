"""Trace-driven TLS timing simulator for Hydra (the "Actual" series of
Figure 11).

Given the thread traces of one selected STL and its speculative
compilation summary, the simulator schedules the threads over the CMP's
``p`` CPUs under Hydra's rules:

* threads are dispatched in sequential order, round-robin over CPUs; a
  CPU is busy until its previous thread *commits* (speculative state
  must drain first);
* a RAW violation — a speculative thread loaded an address before an
  earlier thread's store to it — restarts the consumer at the store
  time plus the Table 2 violation/restart penalty;
* compiler-eliminated locals (inductors, reductions, invariants) never
  conflict; globalized (forwarded) locals synchronize with the
  store-load communication delay instead of violating;
* loads a thread's own store already covered do not violate (the store
  buffer forwards them);
* per-thread speculative state is tracked in a true 4-way LRU model of
  the L1 read state and a fully associative store-buffer model; when a
  thread overflows, it stalls at the overflow point until it becomes the
  head (non-speculative) thread — stores after the overflow point drain
  only once the thread resumes, and are published at those drained
  times;
* threads commit in order; loop startup/shutdown and per-thread EOI
  overheads from Table 2 are charged.

Because the estimator works from *averaged* statistics while this
simulator replays the *actual* per-iteration behaviour (thread-size
variance, real violation timing, associativity), their disagreement
reproduces the imprecision effects of Section 6.2.

Per-thread analysis is factored into two pure kernels so the columnar
:class:`~repro.tls.engine.TraceEngine` can memoize them across
configuration sweeps:

* :func:`prepare_thread` / :func:`prepare_view` — classification: drop
  compiler-eliminated locals, pre-resolve own-store forwarding, and
  project the heap event sequence.  Depends only on the thread's events
  and the compilation's eliminated-slot sets.
* :func:`overflow_point` — first speculative-buffer overflow of the
  prepared heap sequence.  Depends only on the Table 1 buffer geometry
  (``load_buffer_lines``, ``load_buffer_assoc``, ``store_buffer_lines``).

Everything else (dependency resolution, scheduling) is cheap per config
and re-runs on every sweep point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.hydra.cache import FullyAssocBuffer, SetAssocCache
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jit.speculative import STLCompilation
from repro.runtime.events import KIND_LD, KIND_LLD, KIND_LST, KIND_ST
from repro.runtime.heap import line_of
from repro.tls.thread_trace import (
    LOCAL_ADDRESS_BASE,
    EntryTrace,
    ThreadTrace,
    ThreadView,
    local_slot_of,
)


class EntryResult:
    """Timing outcome of one STL entry under TLS."""

    __slots__ = ("parallel_cycles", "sequential_cycles", "violations",
                 "overflows", "threads")

    def __init__(self, parallel_cycles: int, sequential_cycles: int,
                 violations: int, overflows: int, threads: int):
        self.parallel_cycles = parallel_cycles
        self.sequential_cycles = sequential_cycles
        self.violations = violations
        self.overflows = overflows
        self.threads = threads


class TLSResult:
    """Aggregate TLS outcome for one STL across all its entries."""

    def __init__(self, loop_id: int):
        self.loop_id = loop_id
        self.parallel_cycles = 0
        self.sequential_cycles = 0
        self.violations = 0
        self.overflows = 0
        self.threads = 0
        self.entries = 0

    def add(self, entry: EntryResult) -> None:
        self.parallel_cycles += entry.parallel_cycles
        self.sequential_cycles += entry.sequential_cycles
        self.violations += entry.violations
        self.overflows += entry.overflows
        self.threads += entry.threads
        self.entries += 1

    @property
    def speedup(self) -> float:
        """Measured speculative speedup over sequential execution."""
        if self.parallel_cycles <= 0:
            return 1.0
        return self.sequential_cycles / self.parallel_cycles

    @property
    def violation_rate(self) -> float:
        """Violations per thread."""
        return self.violations / self.threads if self.threads else 0.0

    def invariant_errors(self, config: HydraConfig = DEFAULT_HYDRA
                         ) -> list:
        """Scheduling-model violations in this aggregate (empty = ok).

        The conformance fuzz campaign runs this after every simulated
        STL.  Each rule is a consequence of Hydra's execution model, so
        a violation always indicates a simulator bug:

        * counters are non-negative and overflowing threads are a
          subset of scheduled threads;
        * ``p`` CPUs cannot speed anything up more than ``p``-fold;
        * an entry with threads pays at least the Table 2 loop
          startup + shutdown overhead, so the aggregate parallel time
          is bounded below by ``entries`` times that.
        """
        errors = []

        def need(cond: bool, rule: str) -> None:
            if not cond:
                errors.append("L%d: %s" % (self.loop_id, rule))

        need(self.parallel_cycles >= 0 and self.sequential_cycles >= 0,
             "negative cycle counters (%d parallel, %d sequential)"
             % (self.parallel_cycles, self.sequential_cycles))
        need(self.violations >= 0,
             "negative violation count %d" % self.violations)
        need(0 <= self.overflows <= self.threads,
             "overflows (%d) outside [0, threads=%d]"
             % (self.overflows, self.threads))
        need(self.entries >= 0 and self.threads >= 0,
             "negative entry/thread counters")
        need(self.speedup <= config.n_cpus + 1e-9,
             "speedup %.3f exceeds the %d-CPU bound"
             % (self.speedup, config.n_cpus))
        if self.threads > 0:
            floor = config.startup_overhead + config.shutdown_overhead
            need(self.parallel_cycles >= floor,
                 "parallel time %d below one entry's %d-cycle "
                 "startup+shutdown floor"
                 % (self.parallel_cycles, floor))
            # every thread occupies its CPU for >= 1 cycle plus the EOI
            # overhead, so the busiest of the p round-robin chains
            # bounds the schedule length from below
            chain = -(-self.threads // config.n_cpus)  # ceil
            need(self.parallel_cycles
                 >= chain * (1 + config.eoi_overhead),
                 "parallel time %d cannot cover %d committed threads "
                 "on %d CPUs"
                 % (self.parallel_cycles, self.threads, config.n_cpus))
        return errors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<TLSResult L%d %.2fx viol/thread=%.3f ovf=%d>"
                % (self.loop_id, self.speedup, self.violation_rate,
                   self.overflows))


#: classification kernel output: own-filtered dependency loads, stores
#: in program order, and the heap event projection — each entry is
#: (rel, address, is_local) for the first two and (rel, is_store, line)
#: for the third.  Tuples so memoized values are immutable.
PreparedEvents = Tuple[Tuple[Tuple[int, int, bool], ...],
                       Tuple[Tuple[int, int, bool], ...],
                       Tuple[Tuple[int, bool, int], ...]]


def elimination_key(compilation: STLCompilation) -> frozenset:
    """The slots classification actually reads from a compilation:
    eliminated (inductors/reductions) plus register-allocated
    invariants.  Identical across configuration sweeps of one STL, so
    it doubles as the memo-key projection (the same trick the pipeline
    :class:`~repro.jrpm.cache.ArtifactCache` plays with
    ``profile_config_key``)."""
    return compilation.eliminated_slots | compilation.invariant_slots


def prepare_thread(events, eliminated: frozenset) -> PreparedEvents:
    """Classify one row-shaped thread (list of ``(rel, kind, addr)``).

    Drops compiler-eliminated local accesses, resolves own-store
    forwarding (a load preceded by this thread's own store to the same
    address never leaves the store buffer), and projects the heap event
    sequence for the overflow model.
    """
    dep_loads: List[Tuple[int, int, bool]] = []
    stores: List[Tuple[int, int, bool]] = []
    heap_seq: List[Tuple[int, bool, int]] = []
    own = set()
    for rel, kind, addr in events:
        if kind == "ld":
            heap_seq.append((rel, False, line_of(addr)))
            if addr not in own:
                dep_loads.append((rel, addr, False))
        elif kind == "st":
            heap_seq.append((rel, True, line_of(addr)))
            stores.append((rel, addr, False))
            own.add(addr)
        else:
            slot = local_slot_of(addr)
            if slot is None or slot in eliminated:
                continue
            if kind == "lld":
                if addr not in own:
                    dep_loads.append((rel, addr, True))
            else:
                stores.append((rel, addr, True))
                own.add(addr)
    return tuple(dep_loads), tuple(stores), tuple(heap_seq)


def prepare_view(view: ThreadView, eliminated: frozenset
                 ) -> PreparedEvents:
    """Classify one columnar thread window, reading the shared columns
    directly — no per-event tuple or string materialization.  The
    window is sliced out of the arrays once so the loop iterates a
    C-level ``zip`` instead of indexing three columns per event."""
    rec = view.recording
    lo, hi = view.lo, view.hi
    start = view.start
    dep_loads: List[Tuple[int, int, bool]] = []
    stores: List[Tuple[int, int, bool]] = []
    heap_seq: List[Tuple[int, bool, int]] = []
    dep_append = dep_loads.append
    stores_append = stores.append
    heap_append = heap_seq.append
    own = set()
    own_add = own.add
    _line_of = line_of
    for kind, addr, cyc in zip(rec.kinds[lo:hi], rec.addresses[lo:hi],
                               rec.cycles[lo:hi]):
        rel = cyc - start
        if kind == KIND_LD:
            heap_append((rel, False, _line_of(addr)))
            if addr not in own:
                dep_append((rel, addr, False))
        elif kind == KIND_ST:
            heap_append((rel, True, _line_of(addr)))
            stores_append((rel, addr, False))
            own_add(addr)
        else:
            if addr < LOCAL_ADDRESS_BASE:
                continue
            if ((addr & 0xFFFF) >> 2) in eliminated:
                continue
            if kind == KIND_LLD:
                if addr not in own:
                    dep_append((rel, addr, True))
            else:
                stores_append((rel, addr, True))
                own_add(addr)
    return tuple(dep_loads), tuple(stores), tuple(heap_seq)


def overflow_point(heap_seq, config: HydraConfig) -> Optional[int]:
    """Thread-relative cycle of the first speculative-buffer overflow,
    if any (true associativity modelled)."""
    cache = SetAssocCache(config.load_buffer_lines,
                          config.load_buffer_assoc)
    store_buf = FullyAssocBuffer(config.store_buffer_lines)
    cache_touch = cache.touch
    store_touch = store_buf.touch
    for rel, is_store, line in heap_seq:
        if is_store:
            if store_touch(line):
                return rel
        elif cache_touch(line):
            return rel
    return None


class TLSSimulator:
    """Schedules one STL's thread traces onto the speculative CMP.

    With ``engine`` attached (a :class:`~repro.tls.engine.TraceEngine`
    over the columnar recording the entries were split from), the
    per-thread classification and overflow kernels are memoized across
    simulator instances — i.e. across the configurations of a sweep.
    """

    def __init__(self, compilation: STLCompilation,
                 config: HydraConfig = DEFAULT_HYDRA,
                 engine=None):
        self.compilation = compilation
        self.config = config
        self.engine = engine
        self._eliminated = elimination_key(compilation)

    # -- public API ----------------------------------------------------------

    def simulate(self, entries: List[EntryTrace]) -> TLSResult:
        """Simulate every entry of the STL."""
        result = TLSResult(self.compilation.loop_id)
        engine = self.engine
        if engine is None:
            for entry in entries:
                result.add(self.simulate_entry(entry))
            return result
        with engine.stats.timed_exclusive("resolve"):
            for entry in entries:
                result.add(self.simulate_entry(entry))
        return result

    def simulate_entry(self, entry: EntryTrace) -> EntryResult:
        cfg = self.config
        p = cfg.n_cpus
        threads = entry.threads
        n = len(threads)
        if n == 0:
            return EntryResult(0, entry.total_cycles, 0, 0, 0)

        engine = self.engine
        eliminated = self._eliminated
        if engine is not None and type(threads[0]) is ThreadView:
            loop_id = self.compilation.loop_id
            prepared = engine.prepare_entry(loop_id, entry, eliminated)
            overflow_ats = engine.overflow_entry(
                loop_id, entry, prepared, cfg)
        else:
            prepared = [self._prepare_local(t) for t in threads]
            overflow_ats = [overflow_point(p[2], cfg) for p in prepared]

        #: address -> (producer thread index, absolute store time, local?)
        last_store: Dict[int, Tuple[int, int, bool]] = {}
        cpu_free = [0] * p
        commit_prev = 0
        clock0 = cfg.startup_overhead  # loop startup before thread 0
        prev_start = clock0
        violations = 0
        overflows = 0

        for j, thread in enumerate(threads):
            dep_loads, stores, heap_seq = prepared[j]
            overflow_at = overflow_ats[j]

            base = max(cpu_free[j % p], prev_start)
            if j == 0:
                base = max(base, clock0)
            start, restarts = self._resolve_start(
                base, dep_loads, last_store, j)
            violations += restarts

            eoi = cfg.eoi_overhead
            if overflow_at is None:
                resume = start
                finish = start + thread.size + eoi
            else:
                overflows += 1
                # stall at the overflow point until head, then drain
                resume = max(start + overflow_at, commit_prev)
                finish = resume + (thread.size - overflow_at) + eoi

            commit = max(finish, commit_prev)
            commit_prev = commit
            cpu_free[j % p] = commit
            prev_start = start

            # publish this thread's stores for later consumers; stores
            # issued after an overflow point only drain once the thread
            # resumes as head, so their visible time shifts accordingly
            if overflow_at is None:
                for rel, addr, is_local in stores:
                    last_store[addr] = (j, start + rel, is_local)
            else:
                for rel, addr, is_local in stores:
                    abs_time = (resume + (rel - overflow_at)
                                if rel > overflow_at else start + rel)
                    last_store[addr] = (j, abs_time, is_local)

        parallel = commit_prev + cfg.shutdown_overhead
        return EntryResult(parallel, entry.total_cycles,
                           violations, overflows, n)

    # -- internals ------------------------------------------------------------

    def _prepare_local(self, thread) -> PreparedEvents:
        """Unmemoized classification for either thread layout."""
        if type(thread) is ThreadView:
            return prepare_view(thread, self._eliminated)
        return prepare_thread(thread.events, self._eliminated)

    def _resolve_start(self, base: int, dep_loads,
                       last_store: Dict[int, Tuple[int, int, bool]],
                       j: int) -> Tuple[int, int]:
        """Earliest start time satisfying all cross-thread dependencies,
        counting restarts for heap violations."""
        cfg = self.config
        start = base
        restarts = 0
        # constraints: (load rel, store abs time, is_local)
        constraints: List[Tuple[int, int, bool]] = []
        for rel, addr, is_local in dep_loads:
            prod = last_store.get(addr)
            if prod is None or prod[0] >= j:
                continue
            constraints.append((rel, prod[1], is_local))
        if not constraints:
            return start, restarts

        synchronize_heap = self.compilation.synchronize_heap
        # forwarded locals — and, with the Section 6.3 synchronization
        # optimization, heap dependences too — wait for the producer
        # plus the store-load communication delay instead of violating
        for rel, store_abs, is_local in constraints:
            if is_local or synchronize_heap:
                need = store_abs + cfg.store_load_comm_overhead - rel
                if need > start:
                    start = need
        if synchronize_heap:
            return start, restarts

        # Heap dependencies: a violation fires when the producing store
        # executes and the consumer has already read the address; the
        # consumer restarts *then* (store time + restart penalty) and
        # re-executes, so later loads land later and may no longer
        # violate.  Each restart strictly raises the start time, so this
        # converges; the guard only protects against a modelling bug.
        heap_deps = [(rel, store_abs)
                     for rel, store_abs, is_local in constraints
                     if not is_local]
        guard = 0
        while True:
            guard += 1
            if guard > 100_000:  # pragma: no cover - safety net
                raise SimulationError(
                    "violation resolution did not converge")
            violated = [store_abs for rel, store_abs in heap_deps
                        if start + rel < store_abs]
            if not violated:
                break
            restarts += 1
            start = min(violated) + cfg.violation_restart_overhead
        return start, restarts


def simulate_stl(compilation: STLCompilation, entries: List[EntryTrace],
                 config: HydraConfig = DEFAULT_HYDRA,
                 engine=None) -> TLSResult:
    """One-call wrapper: simulate all entries of one selected STL."""
    return TLSSimulator(compilation, config, engine=engine) \
        .simulate(entries)
