"""Splitting a recorded sequential trace into speculative threads.

The TLS timing simulator is trace-driven (the same methodology as the
limit studies the paper cites): the annotated program runs once
sequentially with a recording listener attached, and this module
windows the event stream of one selected STL into *entries* and
*threads* (= iterations), each with its cycle length and its
memory/local events at thread-relative times.

Two trace layouts are supported:

* the columnar :class:`~repro.runtime.events.ColumnarRecording`
  (structure-of-arrays): windowing is **zero-copy** — each thread is a
  :class:`ThreadView` holding an index range into the shared columns,
  and the sorted ``cycles`` column *is* the cycle index (the
  interpreter's clock only increases), so no per-call index rebuild and
  no per-thread event materialization happen at all;
* the legacy row-of-tuples :class:`~repro.runtime.events.
  RecordingListener`: threads materialize :class:`ThreadEvent` lists.
  Its cycle index is built once per recording and cached (selection
  simulates several STLs against the same recording), keyed by the
  event count so a recording that keeps growing is re-indexed.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, NamedTuple, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.runtime.events import (
    KIND_NAMES,
    LOCAL_ADDRESS_BASE,
    ColumnarRecording,
    MemEvent,
    RecordingListener,
)


class ThreadEvent(NamedTuple):
    """One memory event at a thread-relative cycle offset."""

    rel_cycle: int
    kind: str        # 'ld' | 'st' | 'lld' | 'lst'
    address: int


class ThreadTrace:
    """One speculative thread (one loop iteration), row layout."""

    __slots__ = ("size", "events")

    def __init__(self, size: int, events: List[ThreadEvent]):
        #: sequential cycle length of the iteration
        self.size = size
        self.events = events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ThreadTrace size=%d events=%d>" % (
            self.size, len(self.events))


class ThreadView:
    """One speculative thread as a zero-copy window over the columns.

    Holds ``[lo, hi)`` indices into a :class:`ColumnarRecording` plus
    the window's absolute start cycle; nothing is materialized until a
    consumer asks for the row-shaped ``events`` (compatibility and
    tests — the simulator kernels read the columns directly).
    """

    __slots__ = ("recording", "lo", "hi", "start", "size")

    def __init__(self, recording: ColumnarRecording, lo: int, hi: int,
                 start: int, size: int):
        self.recording = recording
        self.lo = lo
        self.hi = hi
        self.start = start
        self.size = size

    @property
    def events(self) -> List[ThreadEvent]:
        """Materialized row view (not a hot path)."""
        rec = self.recording
        kinds, cycles, addrs = rec.kinds, rec.cycles, rec.addresses
        start = self.start
        return [ThreadEvent(cycles[i] - start, KIND_NAMES[kinds[i]],
                            addrs[i])
                for i in range(self.lo, self.hi)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ThreadView [%d:%d) size=%d>" % (
            self.lo, self.hi, self.size)


#: either thread representation; the simulator accepts both
AnyThread = Union[ThreadTrace, ThreadView]


class EntryTrace:
    """One dynamic entry of the STL: an ordered list of threads."""

    __slots__ = ("threads", "total_cycles", "frame_id")

    def __init__(self, threads: List[AnyThread], total_cycles: int,
                 frame_id: int):
        self.threads = threads
        #: sequential cycles from sloop to eloop (includes the exit tail)
        self.total_cycles = total_cycles
        #: the frame that executed this entry (for local classification)
        self.frame_id = frame_id


def local_slot_of(address: int) -> Optional[int]:
    """Slot number encoded in a synthetic local address, if it is one."""
    if address < LOCAL_ADDRESS_BASE:
        return None
    return (address & 0xFFFF) // 4


def local_frame_of(address: int) -> Optional[int]:
    """Frame id encoded in a synthetic local address, if it is one."""
    if address < LOCAL_ADDRESS_BASE:
        return None
    return (address - LOCAL_ADDRESS_BASE) >> 16


def cycle_index(recording: RecordingListener) -> List[int]:
    """The cached sorted cycle list of a row recording.

    Built on first use and reused across every ``split_trace`` call
    against the same recording; invalidated when more events arrive.
    """
    mem = recording.mem
    cached = getattr(recording, "_cycle_index", None)
    if cached is not None and cached[0] == len(mem):
        return cached[1]
    cycles = [e.cycle for e in mem]
    recording._cycle_index = (len(mem), cycles)
    return cycles


def split_trace(recording, loop_id: int) -> List[EntryTrace]:
    """Window ``recording`` into the entry/thread traces of ``loop_id``.

    Thread boundaries follow the tracer's convention: a thread completes
    at each ``eoi``; the tail between the final ``eoi`` and ``eloop`` is
    the loop's exit evaluation and is appended to the last thread (it
    must execute *somewhere*; in compiled speculative code it is part of
    the final iteration).  Entries with no ``eoi`` become one thread.

    Accepts both recording layouts; a :class:`ColumnarRecording` yields
    zero-copy :class:`ThreadView` threads.
    """
    if isinstance(recording, ColumnarRecording):
        build = _build_entry_columnar
        context = recording
    else:
        build = _build_entry_rows
        context = (recording.mem, cycle_index(recording))

    entries: List[EntryTrace] = []
    open_start: Optional[int] = None
    boundaries: List[int] = []
    frame_id = -1
    global_sloop = -1  # index into recording.sloop_frames (all loops)

    for mark in recording.marks:
        if mark.kind == "sloop":
            global_sloop += 1
        if mark.loop_id != loop_id:
            continue
        if mark.kind == "sloop":
            if open_start is not None:
                raise SimulationError(
                    "nested activation of loop L%d in trace" % loop_id)
            open_start = mark.cycle
            frame_id = (recording.sloop_frames[global_sloop]
                        if 0 <= global_sloop < len(recording.sloop_frames)
                        else -1)
            boundaries = [mark.cycle]
        elif mark.kind == "eoi":
            if open_start is None:
                raise SimulationError(
                    "eoi without sloop for loop L%d" % loop_id)
            boundaries.append(mark.cycle)
        elif mark.kind == "eloop":
            if open_start is None:
                raise SimulationError(
                    "eloop without sloop for loop L%d" % loop_id)
            entries.append(build(
                context, boundaries, mark.cycle, frame_id))
            open_start = None
    if open_start is not None:
        raise SimulationError(
            "trace ended inside an activation of loop L%d" % loop_id)
    return entries


def _thread_windows(boundaries: List[int], end: int
                    ) -> List[Tuple[int, int]]:
    """Per-thread [start, end) cycle windows of one entry."""
    if len(boundaries) == 1:
        return [(boundaries[0], end)]
    windows = [(boundaries[i], boundaries[i + 1])
               for i in range(len(boundaries) - 1)]
    windows[-1] = (windows[-1][0], end)
    return windows


def _build_entry_rows(context, boundaries: List[int], end: int,
                      frame_id: int) -> EntryTrace:
    mem, cycles = context
    start = boundaries[0]
    threads: List[ThreadTrace] = []
    for w_start, w_end in _thread_windows(boundaries, end):
        lo = bisect_left(cycles, w_start)
        hi = bisect_left(cycles, w_end)
        events = [ThreadEvent(mem[i].cycle - w_start, mem[i].kind,
                              mem[i].address)
                  for i in range(lo, hi)]
        threads.append(ThreadTrace(w_end - w_start, events))
    return EntryTrace(threads, end - start, frame_id)


def _build_entry_columnar(recording: ColumnarRecording,
                          boundaries: List[int], end: int,
                          frame_id: int) -> EntryTrace:
    cycles = recording.cycles  # sorted by the interpreter's clock
    start = boundaries[0]
    threads: List[ThreadView] = []
    lo = bisect_left(cycles, start)
    for w_start, w_end in _thread_windows(boundaries, end):
        hi = bisect_left(cycles, w_end, lo)
        threads.append(ThreadView(recording, lo, hi, w_start,
                                  w_end - w_start))
        lo = hi
    return EntryTrace(threads, end - start, frame_id)
