"""Splitting a recorded sequential trace into speculative threads.

The TLS timing simulator is trace-driven (the same methodology as the
limit studies the paper cites): the annotated program runs once
sequentially with a :class:`~repro.runtime.events.RecordingListener`
attached, and this module windows the event stream of one selected STL
into *entries* and *threads* (= iterations), each with its cycle length
and its memory/local events at thread-relative times.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, NamedTuple, Optional, Tuple

from repro.errors import SimulationError
from repro.runtime.events import (
    LOCAL_ADDRESS_BASE,
    MemEvent,
    RecordingListener,
)


class ThreadEvent(NamedTuple):
    """One memory event at a thread-relative cycle offset."""

    rel_cycle: int
    kind: str        # 'ld' | 'st' | 'lld' | 'lst'
    address: int


class ThreadTrace:
    """One speculative thread (one loop iteration)."""

    __slots__ = ("size", "events")

    def __init__(self, size: int, events: List[ThreadEvent]):
        #: sequential cycle length of the iteration
        self.size = size
        self.events = events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ThreadTrace size=%d events=%d>" % (
            self.size, len(self.events))


class EntryTrace:
    """One dynamic entry of the STL: an ordered list of threads."""

    __slots__ = ("threads", "total_cycles", "frame_id")

    def __init__(self, threads: List[ThreadTrace], total_cycles: int,
                 frame_id: int):
        self.threads = threads
        #: sequential cycles from sloop to eloop (includes the exit tail)
        self.total_cycles = total_cycles
        #: the frame that executed this entry (for local classification)
        self.frame_id = frame_id


def local_slot_of(address: int) -> Optional[int]:
    """Slot number encoded in a synthetic local address, if it is one."""
    if address < LOCAL_ADDRESS_BASE:
        return None
    return (address & 0xFFFF) // 4


def local_frame_of(address: int) -> Optional[int]:
    """Frame id encoded in a synthetic local address, if it is one."""
    if address < LOCAL_ADDRESS_BASE:
        return None
    return (address - LOCAL_ADDRESS_BASE) >> 16


def split_trace(recording: RecordingListener, loop_id: int
                ) -> List[EntryTrace]:
    """Window ``recording`` into the entry/thread traces of ``loop_id``.

    Thread boundaries follow the tracer's convention: a thread completes
    at each ``eoi``; the tail between the final ``eoi`` and ``eloop`` is
    the loop's exit evaluation and is appended to the last thread (it
    must execute *somewhere*; in compiled speculative code it is part of
    the final iteration).  Entries with no ``eoi`` become one thread.
    """
    mem = recording.mem
    cycles = [e.cycle for e in mem]

    entries: List[EntryTrace] = []
    open_start: Optional[int] = None
    boundaries: List[int] = []
    frame_id = -1
    global_sloop = -1  # index into recording.sloop_frames (all loops)

    for mark in recording.marks:
        if mark.kind == "sloop":
            global_sloop += 1
        if mark.loop_id != loop_id:
            continue
        if mark.kind == "sloop":
            if open_start is not None:
                raise SimulationError(
                    "nested activation of loop L%d in trace" % loop_id)
            open_start = mark.cycle
            frame_id = (recording.sloop_frames[global_sloop]
                        if 0 <= global_sloop < len(recording.sloop_frames)
                        else -1)
            boundaries = [mark.cycle]
        elif mark.kind == "eoi":
            if open_start is None:
                raise SimulationError(
                    "eoi without sloop for loop L%d" % loop_id)
            boundaries.append(mark.cycle)
        elif mark.kind == "eloop":
            if open_start is None:
                raise SimulationError(
                    "eloop without sloop for loop L%d" % loop_id)
            entries.append(_build_entry(
                mem, cycles, boundaries, mark.cycle, frame_id))
            open_start = None
    if open_start is not None:
        raise SimulationError(
            "trace ended inside an activation of loop L%d" % loop_id)
    return entries


def _build_entry(mem: List[MemEvent], cycles: List[int],
                 boundaries: List[int], end: int,
                 frame_id: int) -> EntryTrace:
    start = boundaries[0]
    # thread windows: consecutive boundary pairs, final tail folded into
    # the last thread
    if len(boundaries) == 1:
        windows: List[Tuple[int, int]] = [(start, end)]
    else:
        windows = [(boundaries[i], boundaries[i + 1])
                   for i in range(len(boundaries) - 1)]
        windows[-1] = (windows[-1][0], end)

    threads: List[ThreadTrace] = []
    for w_start, w_end in windows:
        lo = bisect_left(cycles, w_start)
        hi = bisect_left(cycles, w_end)
        events = [ThreadEvent(mem[i].cycle - w_start, mem[i].kind,
                              mem[i].address)
                  for i in range(lo, hi)]
        threads.append(ThreadTrace(w_end - w_start, events))
    return EntryTrace(threads, end - start, frame_id)
