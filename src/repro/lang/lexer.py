"""Hand-written lexer for minijava.

Produces a list of :class:`~repro.lang.tokens.Token`; comments (``//`` to
end of line and ``/* ... */``) and whitespace are skipped.  Malformed
input raises :class:`~repro.errors.LexError` with a source position.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError
from repro.lang.tokens import (
    KEYWORDS,
    MULTI_OPS,
    PUNCT,
    SINGLE_OPS,
    TokKind,
    Token,
)


class _Cursor:
    """Tracks position in the source text."""

    __slots__ = ("text", "pos", "line", "column")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def peek(self, ahead: int = 0) -> str:
        """Character ``ahead`` positions from here, or '' at end."""
        i = self.pos + ahead
        return self.text[i] if i < len(self.text) else ""

    def advance(self, count: int = 1) -> None:
        """Consume ``count`` characters, tracking line/column."""
        for _ in range(count):
            if self.pos >= len(self.text):
                return
            if self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    @property
    def done(self) -> bool:
        return self.pos >= len(self.text)


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into tokens, ending with a single EOF token."""
    cur = _Cursor(source)
    out: List[Token] = []
    while True:
        _skip_trivia(cur)
        if cur.done:
            out.append(Token(TokKind.EOF, "", cur.line, cur.column))
            return out
        ch = cur.peek()
        line, col = cur.line, cur.column
        if ch.isdigit() or (ch == "." and cur.peek(1).isdigit()):
            out.append(_lex_number(cur, line, col))
        elif ch.isalpha() or ch == "_":
            out.append(_lex_word(cur, line, col))
        elif ch in PUNCT:
            cur.advance()
            out.append(Token(TokKind.PUNCT, ch, line, col))
        else:
            out.append(_lex_operator(cur, line, col))


def _skip_trivia(cur: _Cursor) -> None:
    """Skip whitespace and comments."""
    while not cur.done:
        ch = cur.peek()
        if ch in " \t\r\n":
            cur.advance()
        elif ch == "/" and cur.peek(1) == "/":
            while not cur.done and cur.peek() != "\n":
                cur.advance()
        elif ch == "/" and cur.peek(1) == "*":
            start_line, start_col = cur.line, cur.column
            cur.advance(2)
            while not (cur.peek() == "*" and cur.peek(1) == "/"):
                if cur.done:
                    raise LexError(
                        "unterminated block comment", start_line, start_col)
                cur.advance()
            cur.advance(2)
        else:
            return


def _lex_number(cur: _Cursor, line: int, col: int) -> Token:
    """Lex an integer or float literal (decimal only, optional exponent)."""
    start = cur.pos
    is_float = False
    while cur.peek().isdigit():
        cur.advance()
    if cur.peek() == "." and cur.peek(1).isdigit():
        is_float = True
        cur.advance()
        while cur.peek().isdigit():
            cur.advance()
    if cur.peek() in "eE" and (
            cur.peek(1).isdigit()
            or (cur.peek(1) in "+-" and cur.peek(2).isdigit())):
        is_float = True
        cur.advance()
        if cur.peek() in "+-":
            cur.advance()
        while cur.peek().isdigit():
            cur.advance()
    text = cur.text[start:cur.pos]
    if cur.peek().isalpha() or cur.peek() == "_":
        raise LexError("malformed number %r" % (text + cur.peek()), line, col)
    kind = TokKind.FLOAT if is_float else TokKind.INT
    return Token(kind, text, line, col)


def _lex_word(cur: _Cursor, line: int, col: int) -> Token:
    """Lex an identifier or keyword."""
    start = cur.pos
    while cur.peek().isalnum() or cur.peek() == "_":
        cur.advance()
    text = cur.text[start:cur.pos]
    kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
    return Token(kind, text, line, col)


def _lex_operator(cur: _Cursor, line: int, col: int) -> Token:
    """Lex an operator, matching multi-character forms greedily."""
    for op in MULTI_OPS:
        if cur.text.startswith(op, cur.pos):
            cur.advance(len(op))
            return Token(TokKind.OP, op, line, col)
    ch = cur.peek()
    if ch in SINGLE_OPS:
        cur.advance()
        return Token(TokKind.OP, ch, line, col)
    raise LexError("unexpected character %r" % ch, line, col)
