"""minijava: the small imperative language the paper's workloads are
written in for this reproduction.

The paper's Jrpm system consumes Java bytecode through the Kaffe JVM;
here the equivalent front-end is a full lexer → parser → semantic
analyzer → bytecode generator for a C-like language with ints, floats
and one-dimensional arrays.  :func:`compile_source` is the one-call
entry point.
"""

from repro.lang.codegen import compile_module, compile_source
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.sema import analyze

__all__ = [
    "analyze",
    "compile_module",
    "compile_source",
    "parse",
    "tokenize",
]
