"""Token definitions for the minijava front-end.

The paper's Jrpm system consumes Java bytecode; our workloads are written
in *minijava*, a small imperative language with ints, floats and
one-dimensional arrays that compiles to the bytecode ISA in
:mod:`repro.bytecode`.  The language is just rich enough to express the
loop structures of the paper's 26 benchmarks.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class TokKind(enum.Enum):
    """Lexical token categories."""

    INT = "int literal"
    FLOAT = "float literal"
    IDENT = "identifier"
    KEYWORD = "keyword"
    OP = "operator"
    PUNCT = "punctuation"
    EOF = "end of input"


class Token(NamedTuple):
    """A single token with its source position (1-based)."""

    kind: TokKind
    text: str
    line: int
    column: int

    def describe(self) -> str:
        """Human-readable form for error messages."""
        if self.kind is TokKind.EOF:
            return "end of input"
        return "%s %r" % (self.kind.value, self.text)


#: Reserved words.  ``array`` and the intrinsics are ordinary identifiers
#: resolved during semantic analysis, not keywords.
KEYWORDS = frozenset(
    [
        "func",
        "var",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "print",
    ]
)

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_OPS = (
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
)

#: Single-character operators.
SINGLE_OPS = frozenset("+-*/%<>!&|^~=")

#: Punctuation characters.
PUNCT = frozenset("()[]{},;")
