"""Abstract syntax tree for minijava.

Nodes carry source positions so semantic errors point at the offending
construct.  The tree is deliberately plain — dataclass-like classes with
``__slots__`` — and is consumed by :mod:`repro.lang.sema` and
:mod:`repro.lang.codegen`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class Node:
    """Base class; every node records ``line``/``column``."""

    __slots__ = ("line", "column")

    def __init__(self, line: int = 0, column: int = 0):
        self.line = line
        self.column = column


# -- expressions ------------------------------------------------------------


class Expr(Node):
    """Base class for expressions."""

    __slots__ = ()


class IntLit(Expr):
    """Integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.value = value


class FloatLit(Expr):
    """Float literal."""

    __slots__ = ("value",)

    def __init__(self, value: float, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.value = value


class Name(Expr):
    """A variable reference."""

    __slots__ = ("ident",)

    def __init__(self, ident: str, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.ident = ident


class Index(Expr):
    """``base[index]`` — an array element read (or write target)."""

    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr,
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.base = base
        self.index = index


class Unary(Expr):
    """``-x``, ``!x``, ``~x``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr,
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.op = op
        self.operand = operand


class Binary(Expr):
    """``lhs <op> rhs`` for arithmetic, bitwise and comparison operators."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr,
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Logical(Expr):
    """Short-circuit ``&&`` / ``||``."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr,
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Call(Expr):
    """A call to a user function, builtin, or intrinsic."""

    __slots__ = ("callee", "args")

    def __init__(self, callee: str, args: List[Expr],
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.callee = callee
        self.args = args


# -- statements ------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""

    __slots__ = ()


class VarDecl(Stmt):
    """``var name = expr;``"""

    __slots__ = ("name", "init")

    def __init__(self, name: str, init: Expr,
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.name = name
        self.init = init


class Assign(Stmt):
    """``name = expr;``"""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Expr,
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.name = name
        self.value = value


class StoreIndex(Stmt):
    """``base[index] = expr;``"""

    __slots__ = ("target", "value")

    def __init__(self, target: Index, value: Expr,
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.target = target
        self.value = value


class If(Stmt):
    """``if (cond) { ... } else { ... }``; ``orelse`` may be empty."""

    __slots__ = ("cond", "body", "orelse")

    def __init__(self, cond: Expr, body: List[Stmt], orelse: List[Stmt],
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.cond = cond
        self.body = body
        self.orelse = orelse


class While(Stmt):
    """``while (cond) { ... }``"""

    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: List[Stmt],
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.cond = cond
        self.body = body


class For(Stmt):
    """``for (init; cond; step) { ... }``; init/step are optional
    simple statements (VarDecl/Assign/StoreIndex/ExprStmt)."""

    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init: Optional[Stmt], cond: Expr,
                 step: Optional[Stmt], body: List[Stmt],
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    """``return expr?;``"""

    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr],
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.value = value


class Break(Stmt):
    """``break;``"""

    __slots__ = ()


class Continue(Stmt):
    """``continue;``"""

    __slots__ = ()


class ExprStmt(Stmt):
    """An expression evaluated for side effects (a call)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.expr = expr


class Print(Stmt):
    """``print expr;`` (debugging aid)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.expr = expr


# -- declarations ------------------------------------------------------------


class FuncDecl(Node):
    """``func name(params) { body }``"""

    __slots__ = ("name", "params", "body")

    def __init__(self, name: str, params: Tuple[str, ...], body: List[Stmt],
                 line: int = 0, column: int = 0):
        super().__init__(line, column)
        self.name = name
        self.params = params
        self.body = body


class Module(Node):
    """A whole source file: a list of function declarations."""

    __slots__ = ("functions",)

    def __init__(self, functions: List[FuncDecl]):
        super().__init__()
        self.functions = functions
