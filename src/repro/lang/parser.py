"""Recursive-descent parser for minijava.

Grammar (EBNF; ``*`` repetition, ``?`` option):

.. code-block:: text

    module     := funcdecl*
    funcdecl   := "func" IDENT "(" [IDENT ("," IDENT)*] ")" block
    block      := "{" stmt* "}"
    stmt       := "var" IDENT "=" expr ";"
                | "if" "(" expr ")" block ["else" (block | if-stmt)]
                | "while" "(" expr ")" block
                | "for" "(" [simple] ";" expr ";" [simple] ")" block
                | "return" [expr] ";"
                | "break" ";" | "continue" ";"
                | "print" expr ";"
                | simple ";"
    simple     := IDENT "=" expr
                | postfix "[" expr "]" "=" expr
                | expr                      (must be a call)
    expr       := or
    or         := and ("||" and)*
    and        := bitor ("&&" bitor)*
    bitor      := bitxor ("|" bitxor)*
    bitxor     := bitand ("^" bitand)*
    bitand     := equality ("&" equality)*
    equality   := relational (("=="|"!=") relational)*
    relational := shift (("<"|"<="|">"|">=") shift)*
    shift      := additive (("<<"|">>") additive)*
    additive   := multiplicative (("+"|"-") multiplicative)*
    multiplicative := unary (("*"|"/"|"%") unary)*
    unary      := ("-"|"!"|"~") unary | postfix
    postfix    := primary ("[" expr "]")*
    primary    := INT | FLOAT | IDENT ["(" args ")"] | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind, Token


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not TokKind.EOF:
            self._pos += 1
        return tok

    def _check(self, kind: TokKind, text: Optional[str] = None) -> bool:
        tok = self._cur
        return tok.kind is kind and (text is None or tok.text == text)

    def _accept(self, kind: TokKind, text: Optional[str] = None
                ) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokKind, text: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        want = text if text is not None else kind.value
        raise ParseError(
            "expected %s, found %s" % (want, self._cur.describe()),
            self._cur.line, self._cur.column)

    # -- declarations ---------------------------------------------------

    def parse_module(self) -> ast.Module:
        """Parse a whole source file."""
        functions: List[ast.FuncDecl] = []
        while not self._check(TokKind.EOF):
            functions.append(self._funcdecl())
        return ast.Module(functions)

    def _funcdecl(self) -> ast.FuncDecl:
        start = self._expect(TokKind.KEYWORD, "func")
        name = self._expect(TokKind.IDENT).text
        self._expect(TokKind.PUNCT, "(")
        params: List[str] = []
        if not self._check(TokKind.PUNCT, ")"):
            params.append(self._expect(TokKind.IDENT).text)
            while self._accept(TokKind.PUNCT, ","):
                params.append(self._expect(TokKind.IDENT).text)
        self._expect(TokKind.PUNCT, ")")
        body = self._block()
        return ast.FuncDecl(name, tuple(params), body,
                            start.line, start.column)

    # -- statements -------------------------------------------------------

    def _block(self) -> List[ast.Stmt]:
        self._expect(TokKind.PUNCT, "{")
        stmts: List[ast.Stmt] = []
        while not self._check(TokKind.PUNCT, "}"):
            if self._check(TokKind.EOF):
                raise ParseError("unterminated block",
                                 self._cur.line, self._cur.column)
            stmts.append(self._stmt())
        self._expect(TokKind.PUNCT, "}")
        return stmts

    def _stmt(self) -> ast.Stmt:
        tok = self._cur
        if tok.kind is TokKind.KEYWORD:
            if tok.text == "var":
                stmt = self._var_decl()
                self._expect(TokKind.PUNCT, ";")
                return stmt
            if tok.text == "if":
                return self._if_stmt()
            if tok.text == "while":
                return self._while_stmt()
            if tok.text == "for":
                return self._for_stmt()
            if tok.text == "return":
                self._advance()
                value = None
                if not self._check(TokKind.PUNCT, ";"):
                    value = self._expr()
                self._expect(TokKind.PUNCT, ";")
                return ast.Return(value, tok.line, tok.column)
            if tok.text == "break":
                self._advance()
                self._expect(TokKind.PUNCT, ";")
                node = ast.Break(tok.line, tok.column)
                return node
            if tok.text == "continue":
                self._advance()
                self._expect(TokKind.PUNCT, ";")
                return ast.Continue(tok.line, tok.column)
            if tok.text == "print":
                self._advance()
                expr = self._expr()
                self._expect(TokKind.PUNCT, ";")
                return ast.Print(expr, tok.line, tok.column)
        stmt = self._simple_stmt()
        self._expect(TokKind.PUNCT, ";")
        return stmt

    def _var_decl(self) -> ast.VarDecl:
        start = self._expect(TokKind.KEYWORD, "var")
        name = self._expect(TokKind.IDENT).text
        self._expect(TokKind.OP, "=")
        init = self._expr()
        return ast.VarDecl(name, init, start.line, start.column)

    def _if_stmt(self) -> ast.If:
        start = self._expect(TokKind.KEYWORD, "if")
        self._expect(TokKind.PUNCT, "(")
        cond = self._expr()
        self._expect(TokKind.PUNCT, ")")
        body = self._block()
        orelse: List[ast.Stmt] = []
        if self._accept(TokKind.KEYWORD, "else"):
            if self._check(TokKind.KEYWORD, "if"):
                orelse = [self._if_stmt()]
            else:
                orelse = self._block()
        return ast.If(cond, body, orelse, start.line, start.column)

    def _while_stmt(self) -> ast.While:
        start = self._expect(TokKind.KEYWORD, "while")
        self._expect(TokKind.PUNCT, "(")
        cond = self._expr()
        self._expect(TokKind.PUNCT, ")")
        body = self._block()
        return ast.While(cond, body, start.line, start.column)

    def _for_stmt(self) -> ast.For:
        start = self._expect(TokKind.KEYWORD, "for")
        self._expect(TokKind.PUNCT, "(")
        init: Optional[ast.Stmt] = None
        if not self._check(TokKind.PUNCT, ";"):
            if self._check(TokKind.KEYWORD, "var"):
                init = self._var_decl()
            else:
                init = self._simple_stmt()
        self._expect(TokKind.PUNCT, ";")
        cond = self._expr()
        self._expect(TokKind.PUNCT, ";")
        step: Optional[ast.Stmt] = None
        if not self._check(TokKind.PUNCT, ")"):
            step = self._simple_stmt()
        self._expect(TokKind.PUNCT, ")")
        body = self._block()
        return ast.For(init, cond, step, body, start.line, start.column)

    def _simple_stmt(self) -> ast.Stmt:
        """Assignment, indexed store, or expression statement."""
        start = self._cur
        expr = self._expr()
        if self._accept(TokKind.OP, "="):
            value = self._expr()
            if isinstance(expr, ast.Name):
                return ast.Assign(expr.ident, value,
                                  start.line, start.column)
            if isinstance(expr, ast.Index):
                return ast.StoreIndex(expr, value,
                                      start.line, start.column)
            raise ParseError("invalid assignment target",
                             start.line, start.column)
        if not isinstance(expr, ast.Call):
            raise ParseError(
                "expression statement must be a call",
                start.line, start.column)
        return ast.ExprStmt(expr, start.line, start.column)

    # -- expressions -----------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or()

    def _left_assoc(self, sub, ops, node_cls) -> ast.Expr:
        expr = sub()
        while self._cur.kind is TokKind.OP and self._cur.text in ops:
            op = self._advance()
            rhs = sub()
            expr = node_cls(op.text, expr, rhs, op.line, op.column)
        return expr

    def _or(self) -> ast.Expr:
        return self._left_assoc(self._and, ("||",), ast.Logical)

    def _and(self) -> ast.Expr:
        return self._left_assoc(self._bitor, ("&&",), ast.Logical)

    def _bitor(self) -> ast.Expr:
        return self._left_assoc(self._bitxor, ("|",), ast.Binary)

    def _bitxor(self) -> ast.Expr:
        return self._left_assoc(self._bitand, ("^",), ast.Binary)

    def _bitand(self) -> ast.Expr:
        return self._left_assoc(self._equality, ("&",), ast.Binary)

    def _equality(self) -> ast.Expr:
        return self._left_assoc(self._relational, ("==", "!="), ast.Binary)

    def _relational(self) -> ast.Expr:
        return self._left_assoc(
            self._shift, ("<", "<=", ">", ">="), ast.Binary)

    def _shift(self) -> ast.Expr:
        return self._left_assoc(self._additive, ("<<", ">>"), ast.Binary)

    def _additive(self) -> ast.Expr:
        return self._left_assoc(
            self._multiplicative, ("+", "-"), ast.Binary)

    def _multiplicative(self) -> ast.Expr:
        return self._left_assoc(self._unary, ("*", "/", "%"), ast.Binary)

    def _unary(self) -> ast.Expr:
        tok = self._cur
        if tok.kind is TokKind.OP and tok.text in ("-", "!", "~"):
            self._advance()
            operand = self._unary()
            return ast.Unary(tok.text, operand, tok.line, tok.column)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while self._check(TokKind.PUNCT, "["):
            bracket = self._advance()
            index = self._expr()
            self._expect(TokKind.PUNCT, "]")
            expr = ast.Index(expr, index, bracket.line, bracket.column)
        return expr

    def _primary(self) -> ast.Expr:
        tok = self._cur
        if tok.kind is TokKind.INT:
            self._advance()
            return ast.IntLit(int(tok.text), tok.line, tok.column)
        if tok.kind is TokKind.FLOAT:
            self._advance()
            return ast.FloatLit(float(tok.text), tok.line, tok.column)
        if tok.kind is TokKind.IDENT:
            self._advance()
            if self._check(TokKind.PUNCT, "("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check(TokKind.PUNCT, ")"):
                    args.append(self._expr())
                    while self._accept(TokKind.PUNCT, ","):
                        args.append(self._expr())
                self._expect(TokKind.PUNCT, ")")
                return ast.Call(tok.text, args, tok.line, tok.column)
            return ast.Name(tok.text, tok.line, tok.column)
        if tok.kind is TokKind.PUNCT and tok.text == "(":
            self._advance()
            expr = self._expr()
            self._expect(TokKind.PUNCT, ")")
            return expr
        raise ParseError(
            "expected expression, found %s" % tok.describe(),
            tok.line, tok.column)


def parse(source: str) -> ast.Module:
    """Lex and parse ``source`` into a :class:`~repro.lang.ast_nodes.Module`."""
    parser = Parser(tokenize(source))
    return parser.parse_module()
