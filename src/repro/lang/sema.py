"""Semantic analysis for minijava.

minijava is category-typed: every expression is either *numeric* (an int
or float — the distinction is dynamic, as in the JVM's untyped local
slots once our codegen is done with them) or an *array* (a heap handle).
Semantic analysis enforces:

* scope rules (no use before declaration, no duplicate declaration in the
  same block, parameters pre-declared);
* category rules (arrays cannot be added, numerics cannot be indexed,
  ``array``/``len``/intrinsic arguments have the right categories);
* call arity for user functions, builtins, and intrinsics;
* ``break``/``continue`` only inside loops;
* return consistency (a function either always returns a value or never
  does; value-returning calls cannot be used as statements' discarded
  values *in expression position* of a void function).

Analysis is flow-insensitive and runs before codegen; any failure raises
:class:`~repro.errors.SemanticError` with a source position.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.errors import SemanticError
from repro.lang import ast_nodes as ast

#: Intrinsics and their arity; all take and return numerics.
INTRINSIC_ARITY = {
    "sqrt": 1,
    "sin": 1,
    "cos": 1,
    "exp": 1,
    "log": 1,
    "abs": 1,
    "floor": 1,
    "min": 2,
    "max": 2,
    "pow": 2,
}

#: Builtins handled specially by codegen.
BUILTINS = frozenset(["array", "len", "int", "float"]) | frozenset(
    INTRINSIC_ARITY)


class Kind(enum.Enum):
    """Expression categories."""

    NUM = "numeric"
    ARRAY = "array"
    VOID = "void"


class FuncSig:
    """Signature facts gathered in the pre-pass."""

    __slots__ = ("name", "n_params", "returns_value")

    def __init__(self, name: str, n_params: int, returns_value: bool):
        self.name = name
        self.n_params = n_params
        self.returns_value = returns_value


class _Scope:
    """A lexical block scope mapping names to their category."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["_Scope"] = None):
        self.vars: Dict[str, Kind] = {}
        self.parent = parent

    def lookup(self, name: str) -> Optional[Kind]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def declare(self, name: str, kind: Kind, node: ast.Node) -> None:
        if name in self.vars:
            raise SemanticError(
                "duplicate declaration of %r" % name,
                node.line, node.column)
        self.vars[name] = kind


def _any_return_value(stmts: List[ast.Stmt]) -> bool:
    """Whether any (possibly nested) ``return expr;`` exists."""
    for stmt in stmts:
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            return True
        if isinstance(stmt, ast.If):
            if _any_return_value(stmt.body) or _any_return_value(stmt.orelse):
                return True
        elif isinstance(stmt, (ast.While, ast.For)):
            if _any_return_value(stmt.body):
                return True
    return False


class Analyzer:
    """Walks the AST performing all semantic checks."""

    def __init__(self, module: ast.Module):
        self._module = module
        self._sigs: Dict[str, FuncSig] = {}
        self._current: Optional[FuncSig] = None
        self._loop_depth = 0

    def run(self) -> Dict[str, FuncSig]:
        """Analyze the module; returns the function signature table."""
        for fn in self._module.functions:
            if fn.name in self._sigs:
                raise SemanticError(
                    "duplicate function %r" % fn.name, fn.line, fn.column)
            if fn.name in BUILTINS:
                raise SemanticError(
                    "function %r shadows a builtin" % fn.name,
                    fn.line, fn.column)
            self._sigs[fn.name] = FuncSig(
                fn.name, len(fn.params), _any_return_value(fn.body))
        for fn in self._module.functions:
            self._check_function(fn)
        return self._sigs

    # -- functions --------------------------------------------------------

    def _check_function(self, fn: ast.FuncDecl) -> None:
        self._current = self._sigs[fn.name]
        self._loop_depth = 0
        scope = _Scope()
        seen = set()
        for p in fn.params:
            if p in seen:
                raise SemanticError(
                    "duplicate parameter %r" % p, fn.line, fn.column)
            seen.add(p)
            # Parameter category is unconstrained at the boundary; treat
            # as numeric unless indexed — we approximate by inferring from
            # use.  For simplicity, parameters start as NUM and may be
            # re-declared ARRAY by first use as an array.
            scope.declare(p, Kind.NUM, fn)
        self._params = set(fn.params)
        self._check_block(fn.body, scope)

    # -- statements -------------------------------------------------------

    def _check_block(self, stmts: List[ast.Stmt], parent: _Scope) -> None:
        scope = _Scope(parent)
        for stmt in stmts:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.VarDecl):
            kind = self._check_expr(stmt.init, scope, allow_void=True)
            if kind is Kind.VOID:
                raise SemanticError(
                    "cannot initialize %r from a void call" % stmt.name,
                    stmt.line, stmt.column)
            scope.declare(stmt.name, kind, stmt)
        elif isinstance(stmt, ast.Assign):
            declared = scope.lookup(stmt.name)
            if declared is None:
                raise SemanticError(
                    "assignment to undeclared variable %r" % stmt.name,
                    stmt.line, stmt.column)
            kind = self._check_expr(stmt.value, scope, allow_void=True)
            if kind is Kind.VOID:
                raise SemanticError(
                    "cannot assign a void call to %r" % stmt.name,
                    stmt.line, stmt.column)
            if kind is not declared and self._is_param_relax(stmt.name):
                self._redeclare_param(scope, stmt.name, kind)
            elif kind is not declared:
                raise SemanticError(
                    "%r is %s but assigned a %s value"
                    % (stmt.name, declared.value, kind.value),
                    stmt.line, stmt.column)
        elif isinstance(stmt, ast.StoreIndex):
            base_kind = self._check_expr(stmt.target.base, scope,
                                         want_array=True)
            if base_kind is not Kind.ARRAY:
                raise SemanticError(
                    "indexed store into a non-array",
                    stmt.line, stmt.column)
            if self._check_expr(stmt.target.index, scope) is not Kind.NUM:
                raise SemanticError(
                    "array index must be numeric", stmt.line, stmt.column)
            if self._check_expr(stmt.value, scope) is not Kind.NUM:
                raise SemanticError(
                    "array element must be numeric", stmt.line, stmt.column)
        elif isinstance(stmt, ast.If):
            self._require_num(stmt.cond, scope, "if condition")
            self._check_block(stmt.body, scope)
            self._check_block(stmt.orelse, scope)
        elif isinstance(stmt, ast.While):
            self._require_num(stmt.cond, scope, "while condition")
            self._loop_depth += 1
            self._check_block(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            self._require_num(stmt.cond, inner, "for condition")
            self._loop_depth += 1
            self._check_block(stmt.body, inner)
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            assert self._current is not None
            if stmt.value is not None:
                if not self._current.returns_value:
                    raise SemanticError(
                        "inconsistent returns in %r" % self._current.name,
                        stmt.line, stmt.column)
                kind = self._check_expr(stmt.value, scope,
                                        allow_void=True)
                if kind is Kind.VOID:
                    raise SemanticError(
                        "cannot return a void call",
                        stmt.line, stmt.column)
            elif self._current.returns_value:
                raise SemanticError(
                    "inconsistent returns in %r" % self._current.name,
                    stmt.line, stmt.column)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                word = "break" if isinstance(stmt, ast.Break) else "continue"
                raise SemanticError(
                    "%s outside a loop" % word, stmt.line, stmt.column)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope, allow_void=True)
        elif isinstance(stmt, ast.Print):
            self._require_num(stmt.expr, scope, "print argument")
        else:  # pragma: no cover - exhaustive over Stmt
            raise AssertionError("unknown statement %r" % stmt)

    def _is_param_relax(self, name: str) -> bool:
        """Parameters may be narrowed from NUM to ARRAY on first use."""
        return name in self._params

    def _redeclare_param(self, scope: _Scope, name: str, kind: Kind) -> None:
        walk: Optional[_Scope] = scope
        while walk is not None:
            if name in walk.vars:
                walk.vars[name] = kind
                return
            walk = walk.parent

    # -- expressions -----------------------------------------------------

    def _require_num(self, expr: ast.Expr, scope: _Scope, what: str) -> None:
        if self._check_expr(expr, scope) is not Kind.NUM:
            raise SemanticError(
                "%s must be numeric" % what, expr.line, expr.column)

    def _check_expr(self, expr: ast.Expr, scope: _Scope,
                    allow_void: bool = False,
                    want_array: bool = False) -> Kind:
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return Kind.NUM
        if isinstance(expr, ast.Name):
            kind = scope.lookup(expr.ident)
            if kind is None:
                raise SemanticError(
                    "use of undeclared variable %r" % expr.ident,
                    expr.line, expr.column)
            if want_array and kind is Kind.NUM and expr.ident in self._params:
                self._redeclare_param(scope, expr.ident, Kind.ARRAY)
                return Kind.ARRAY
            return kind
        if isinstance(expr, ast.Index):
            base = self._check_expr(expr.base, scope, want_array=True)
            if base is not Kind.ARRAY:
                raise SemanticError(
                    "indexing a non-array", expr.line, expr.column)
            if self._check_expr(expr.index, scope) is not Kind.NUM:
                raise SemanticError(
                    "array index must be numeric", expr.line, expr.column)
            return Kind.NUM
        if isinstance(expr, ast.Unary):
            kind = self._check_expr(expr.operand, scope)
            if kind is not Kind.NUM:
                raise SemanticError(
                    "unary %r needs a numeric operand" % expr.op,
                    expr.line, expr.column)
            return Kind.NUM
        if isinstance(expr, ast.Binary):
            lhs = self._check_expr(expr.lhs, scope)
            rhs = self._check_expr(expr.rhs, scope)
            if lhs is not Kind.NUM or rhs is not Kind.NUM:
                raise SemanticError(
                    "binary %r needs numeric operands" % expr.op,
                    expr.line, expr.column)
            return Kind.NUM
        if isinstance(expr, ast.Logical):
            self._require_num(expr.lhs, scope, "operand of %r" % expr.op)
            self._require_num(expr.rhs, scope, "operand of %r" % expr.op)
            return Kind.NUM
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope, allow_void)
        raise AssertionError("unknown expression %r" % expr)

    def _check_call(self, expr: ast.Call, scope: _Scope,
                    allow_void: bool) -> Kind:
        name = expr.callee
        if name == "array":
            if len(expr.args) != 1:
                raise SemanticError(
                    "array(n) takes exactly one argument",
                    expr.line, expr.column)
            self._require_num(expr.args[0], scope, "array length")
            return Kind.ARRAY
        if name == "len":
            if len(expr.args) != 1:
                raise SemanticError(
                    "len(a) takes exactly one argument",
                    expr.line, expr.column)
            kind = self._check_expr(expr.args[0], scope, want_array=True)
            if kind is not Kind.ARRAY:
                raise SemanticError(
                    "len() needs an array", expr.line, expr.column)
            return Kind.NUM
        if name in ("int", "float"):
            if len(expr.args) != 1:
                raise SemanticError(
                    "%s(x) takes exactly one argument" % name,
                    expr.line, expr.column)
            self._require_num(expr.args[0], scope, "%s() argument" % name)
            return Kind.NUM
        if name in INTRINSIC_ARITY:
            want = INTRINSIC_ARITY[name]
            if len(expr.args) != want:
                raise SemanticError(
                    "%s() takes %d argument(s), got %d"
                    % (name, want, len(expr.args)),
                    expr.line, expr.column)
            for arg in expr.args:
                self._require_num(arg, scope, "%s() argument" % name)
            return Kind.NUM
        sig = self._sigs.get(name)
        if sig is None:
            raise SemanticError(
                "call to unknown function %r" % name,
                expr.line, expr.column)
        if len(expr.args) != sig.n_params:
            raise SemanticError(
                "%s() takes %d argument(s), got %d"
                % (name, sig.n_params, len(expr.args)),
                expr.line, expr.column)
        for arg in expr.args:
            kind = self._check_expr(arg, scope, allow_void=True)
            if kind is Kind.VOID:
                raise SemanticError(
                    "void call used as an argument",
                    expr.line, expr.column)
        if not sig.returns_value:
            if not allow_void:
                raise SemanticError(
                    "void function %r used as a value" % name,
                    expr.line, expr.column)
            return Kind.VOID
        return Kind.NUM


def analyze(module: ast.Module) -> Dict[str, FuncSig]:
    """Run semantic analysis; returns the signature table."""
    return Analyzer(module).run()
