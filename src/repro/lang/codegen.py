"""Bytecode generation from the minijava AST.

The generator is a single-pass tree walker over a pre-collected table of
named locals.  Named locals must occupy a contiguous slot prefix (the
TEST annotation pass instruments them by slot number, mirroring the
paper's ``lwl``/``swl vn`` instructions), so a pre-walk assigns a slot to
every declaration site before any temporary is allocated.

Shadowed declarations get distinct slots; scope resolution during
emission maps a name to the innermost live declaration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bytecode import (
    BinOp,
    FunctionBuilder,
    Label,
    Program,
    UnOp,
    verify_program,
)
from repro.errors import CodegenError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.sema import INTRINSIC_ARITY, analyze

_BINOPS = {
    "+": BinOp.ADD,
    "-": BinOp.SUB,
    "*": BinOp.MUL,
    "/": BinOp.DIV,
    "%": BinOp.MOD,
    "&": BinOp.AND,
    "|": BinOp.OR,
    "^": BinOp.XOR,
    "<<": BinOp.SHL,
    ">>": BinOp.SHR,
    "<": BinOp.LT,
    "<=": BinOp.LE,
    ">": BinOp.GT,
    ">=": BinOp.GE,
    "==": BinOp.EQ,
    "!=": BinOp.NE,
}

_UNOPS = {
    "-": UnOp.NEG,
    "!": UnOp.NOT,
    "~": UnOp.INV,
}


def _collect_decls(stmts: List[ast.Stmt], out: List[ast.VarDecl]) -> None:
    """Gather every VarDecl in source order (including loop inits)."""
    for stmt in stmts:
        if isinstance(stmt, ast.VarDecl):
            out.append(stmt)
        elif isinstance(stmt, ast.If):
            _collect_decls(stmt.body, out)
            _collect_decls(stmt.orelse, out)
        elif isinstance(stmt, ast.While):
            _collect_decls(stmt.body, out)
        elif isinstance(stmt, ast.For):
            if isinstance(stmt.init, ast.VarDecl):
                out.append(stmt.init)
            _collect_decls(stmt.body, out)


class _FuncGen:
    """Generates bytecode for one function."""

    def __init__(self, decl: ast.FuncDecl, returns_value: bool):
        self._decl = decl
        self._returns_value = returns_value
        self._b = FunctionBuilder(decl.name, decl.params)
        self._slot_of_decl: Dict[int, int] = {}
        # scope stack: list of {name: slot}
        self._scopes: List[Dict[str, int]] = [
            {p: self._b.lookup(p) for p in decl.params}
        ]
        # (continue_target, break_target) stack
        self._loops: List[Tuple[Label, Label]] = []
        decls: List[ast.VarDecl] = []
        _collect_decls(decl.body, decls)
        for d in decls:
            slot = self._b.named_local("%s.%d" % (d.name, len(
                self._slot_of_decl)) if self._is_shadowing(d, decls)
                else d.name)
            self._slot_of_decl[id(d)] = slot

    @staticmethod
    def _is_shadowing(decl: ast.VarDecl, decls: List[ast.VarDecl]) -> bool:
        """Whether another declaration shares this name (needs a unique
        synthetic slot name)."""
        return sum(1 for d in decls if d.name == decl.name) > 1

    # -- scope helpers -----------------------------------------------------

    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _bind(self, name: str, slot: int) -> None:
        self._scopes[-1][name] = slot

    def _resolve(self, name: str) -> int:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise CodegenError("unresolved name %r (sema should have caught)"
                           % name)

    # -- entry -------------------------------------------------------------

    def run(self):
        for stmt in self._decl.body:
            self._stmt(stmt)
        # Guarantee the function ends with a terminator.
        if self._returns_value:
            zero = self._b.temp()
            self._b.const(zero, 0)
            self._b.ret(zero)
        else:
            self._b.ret()
        return self._b.build()

    # -- statements --------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            slot = self._slot_of_decl[id(stmt)]
            self._expr_into(stmt.init, slot)
            self._bind(stmt.name, slot)
        elif isinstance(stmt, ast.Assign):
            slot = self._resolve(stmt.name)
            self._expr_into(stmt.value, slot)
        elif isinstance(stmt, ast.StoreIndex):
            arr = self._expr(stmt.target.base)
            idx = self._expr(stmt.target.index)
            val = self._expr(stmt.value)
            self._b.astore(arr, idx, val)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._b.ret(self._expr(stmt.value))
            else:
                self._b.ret()
        elif isinstance(stmt, ast.Break):
            self._b.jmp(self._loops[-1][1])
        elif isinstance(stmt, ast.Continue):
            self._b.jmp(self._loops[-1][0])
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call):
                self._call(stmt.expr, dst=-1)
            else:  # pragma: no cover - sema rejects
                self._expr(stmt.expr)
        elif isinstance(stmt, ast.Print):
            self._b.print_(self._expr(stmt.expr))
        else:  # pragma: no cover - exhaustive
            raise CodegenError("unknown statement %r" % stmt)

    def _if(self, stmt: ast.If) -> None:
        cond = self._expr(stmt.cond)
        then_lab = self._b.label()
        done_lab = self._b.label()
        else_lab = self._b.label() if stmt.orelse else done_lab
        self._b.br(cond, then_lab, else_lab)
        self._b.mark(then_lab)
        self._push_scope()
        for s in stmt.body:
            self._stmt(s)
        self._pop_scope()
        if stmt.orelse:
            self._b.jmp(done_lab)
            self._b.mark(else_lab)
            self._push_scope()
            for s in stmt.orelse:
                self._stmt(s)
            self._pop_scope()
        self._b.mark(done_lab)

    def _while(self, stmt: ast.While) -> None:
        top = self._b.label()
        body = self._b.label()
        done = self._b.label()
        self._b.mark(top)
        cond = self._expr(stmt.cond)
        self._b.br(cond, body, done)
        self._b.mark(body)
        self._loops.append((top, done))
        self._push_scope()
        for s in stmt.body:
            self._stmt(s)
        self._pop_scope()
        self._loops.pop()
        self._b.jmp(top)
        self._b.mark(done)

    def _for(self, stmt: ast.For) -> None:
        self._push_scope()
        if stmt.init is not None:
            self._stmt(stmt.init)
        top = self._b.label()
        body = self._b.label()
        step_lab = self._b.label()
        done = self._b.label()
        self._b.mark(top)
        cond = self._expr(stmt.cond)
        self._b.br(cond, body, done)
        self._b.mark(body)
        self._loops.append((step_lab, done))
        self._push_scope()
        for s in stmt.body:
            self._stmt(s)
        self._pop_scope()
        self._loops.pop()
        self._b.mark(step_lab)
        if stmt.step is not None:
            self._stmt(stmt.step)
        self._b.jmp(top)
        self._b.mark(done)
        self._pop_scope()

    # -- expressions --------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> int:
        """Evaluate into a fresh temp (or return the slot for a Name)."""
        if isinstance(expr, ast.Name):
            return self._resolve(expr.ident)
        dst = self._b.temp()
        self._expr_into(expr, dst)
        return dst

    def _expr_into(self, expr: ast.Expr, dst: int) -> None:
        """Evaluate ``expr`` into slot ``dst``."""
        b = self._b
        if isinstance(expr, ast.IntLit):
            b.const(dst, expr.value)
        elif isinstance(expr, ast.FloatLit):
            b.const(dst, expr.value)
        elif isinstance(expr, ast.Name):
            b.mov(dst, self._resolve(expr.ident))
        elif isinstance(expr, ast.Index):
            arr = self._expr(expr.base)
            idx = self._expr(expr.index)
            b.aload(dst, arr, idx)
        elif isinstance(expr, ast.Unary):
            operand = self._expr(expr.operand)
            b.unop(_UNOPS[expr.op], dst, operand)
        elif isinstance(expr, ast.Binary):
            lhs = self._expr(expr.lhs)
            rhs = self._expr(expr.rhs)
            b.binop(_BINOPS[expr.op], dst, lhs, rhs)
        elif isinstance(expr, ast.Logical):
            self._logical(expr, dst)
        elif isinstance(expr, ast.Call):
            self._call(expr, dst)
        else:  # pragma: no cover - exhaustive
            raise CodegenError("unknown expression %r" % expr)

    def _logical(self, expr: ast.Logical, dst: int) -> None:
        """Short-circuit ``&&``/``||`` producing 0/1 in ``dst``."""
        b = self._b
        eval_rhs = b.label()
        short = b.label()
        done = b.label()
        lhs = self._expr(expr.lhs)
        if expr.op == "&&":
            b.br(lhs, eval_rhs, short)   # lhs false -> 0
            short_value = 0
        else:
            b.br(lhs, short, eval_rhs)   # lhs true -> 1
            short_value = 1
        b.mark(eval_rhs)
        rhs = self._expr(expr.rhs)
        # normalize rhs to 0/1
        zero = b.temp()
        b.const(zero, 0)
        b.binop(BinOp.NE, dst, rhs, zero)
        b.jmp(done)
        b.mark(short)
        b.const(dst, short_value)
        b.mark(done)

    def _call(self, expr: ast.Call, dst: int) -> None:
        b = self._b
        name = expr.callee
        if name == "array":
            length = self._expr(expr.args[0])
            b.newarr(dst, length)
            return
        if name == "len":
            arr = self._expr(expr.args[0])
            b.length(dst, arr)
            return
        if name == "int":
            b.unop(UnOp.F2I, dst, self._expr(expr.args[0]))
            return
        if name == "float":
            b.unop(UnOp.I2F, dst, self._expr(expr.args[0]))
            return
        args = tuple(self._expr(a) for a in expr.args)
        if name in INTRINSIC_ARITY:
            b.intrin(dst, name, args)
            return
        b.call(dst, name, args)


def compile_module(module: ast.Module, entry: str = "main") -> Program:
    """Compile an analyzed AST module to a verified bytecode program."""
    sigs = analyze(module)
    program = Program(entry=entry)
    for decl in module.functions:
        gen = _FuncGen(decl, sigs[decl.name].returns_value)
        program.add(gen.run())
    verify_program(program)
    return program


def compile_source(source: str, entry: str = "main") -> Program:
    """Parse, analyze, and compile minijava source text."""
    return compile_module(parse(source), entry=entry)
