"""Per-family estimator error atlas over the synthetic corpus.

PR 9 calibrated the conformance oracle's bounds against the 26-row
Table 6 corpus.  The synthesizer's value as a *test* is mapping where
those bounds hold and where they break: each instance runs through the
pipeline twice — once legacy (hydra-tls everywhere, the path the
workload-level bounds gate) and once under the multi-model argmax
(the path :data:`~repro.conformance.oracle.MODEL_ERROR_BOUNDS`
gates) — and the atlas aggregates the errors per family:

* **legacy workload-level error** — |pred - act| / act on the
  whole-program speedup, the quantity
  :data:`~repro.conformance.oracle.WORKLOAD_ERROR_BOUNDS` bounds for
  the bundled corpus;
* **per-model STL error** — each selected loop's speedup prediction
  error attributed to the model that estimated it;
* **label outcome** — the :mod:`repro.synth.oracle` check on the same
  argmax run.

Families whose measured errors exceed
:data:`~repro.conformance.oracle.DEFAULT_ERROR_BOUND` (the 40%
fallback applied to unmeasured programs) are flagged as **bound
breakers**: programs where Equation 1's analytic model diverges from
the simulator.  The chase family is built to be one — every-iteration
heap-carried violations on a tiny thread body are misspeculation the
estimator's arc-separation model never sees, the same mechanism as
the documented BitOps outlier.  :data:`FAMILY_ERROR_BOUNDS` records
each family's measured ceiling (with headroom) so ``jrpm conform
--synth`` can gate the corpus without the fallback bound failing the
intentional breakers.

``benchmarks/bench_synth.py`` writes the full atlas to
``BENCH_synth.json``; EXPERIMENTS.md carries the measured table.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.conformance.oracle import (
    DEFAULT_ERROR_BOUND,
    conformance_row,
)
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jrpm.executor import FleetExecutor
from repro.jrpm.pipeline import Jrpm
from repro.synth.oracle import check_label
from repro.workloads.registry import SYNTHETIC

#: measured per-family ceilings on the *legacy* workload-level error
#: (|pred - act| / act on whole-program speedup), with ~1.5x headroom
#: over the default-corpus measurement — the synthetic analogue of
#: WORKLOAD_ERROR_BOUNDS.  Measured values are in EXPERIMENTS.md
#: ("Synthetic error atlas"); keep the two in sync.  chase is the
#: deliberate breaker: its bare heap-pointer chase misspeculates every
#: iteration while Equation 1 models the chain as an arc-separation
#: delay, so its error dwarfs the 40% fallback bound by construction.
FAMILY_ERROR_BOUNDS: Dict[str, float] = {
    "stencil": 0.27,    # measured max 17.8% (mean 16.3%)
    "reduction": 0.31,  # measured max 20.6% (mean 19.9%)
    "chase": 1.15,      # measured max 74.7% (mean 61.5%) — breaker
    "graph": 0.22,      # measured max 14.2% (mean 12.9%)
    "mixed": 0.15,      # measured max  9.9% (mean  7.7%)
}

#: per-model STL ceilings for the synthetic gate.  The Table 6
#: calibration (MODEL_ERROR_BOUNDS) caps hydra-tls at 55%, but the
#: chase family's selected loop measures 76% under hydra-tls — the
#: same analytic blind spot that makes it the workload-level breaker
#: shows up per-STL too, on a shape the bundled corpus never hits.
#: doacross measures at most 58% here (mixed), well under its 170%
#: Table 6 ceiling.
SYNTH_MODEL_ERROR_BOUNDS: Dict[str, float] = {
    "sequential": 0.0,  # predicts 1.0x by construction
    "hydra-tls": 0.95,  # measured max 76% (chase)
    "doacross": 0.90,   # measured max 58% (mixed)
}


class AtlasRow:
    """One synthetic instance's atlas entry (fleet-row protocol)."""

    ok = True

    def __init__(self, name: str, family: str, expected_class: str,
                 legacy_row, argmax_row, label_row):
        self.name = name
        self.family = family
        self.expected_class = expected_class
        #: WorkloadConformance from the legacy (hydra-tls) pipeline
        self.legacy = legacy_row
        #: WorkloadConformance from the multi-model argmax pipeline
        self.argmax = argmax_row
        #: LabelRow checked against the argmax run
        self.label = label_row

    @property
    def legacy_error(self) -> float:
        """Workload-level |pred - act| / act, legacy pipeline."""
        return self.legacy.rel_error

    @property
    def model_errors(self) -> Dict[str, float]:
        """Worst selected-STL speedup error per model (argmax run)."""
        worst: Dict[str, float] = {}
        for stl in self.argmax.stls:
            err = stl.speedup_rel_error
            if err > worst.get(stl.model, -1.0):
                worst[stl.model] = err
        return worst

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "family": self.family,
            "expected_class": self.expected_class,
            "legacy": {
                "predicted_speedup":
                    round(self.legacy.predicted_speedup, 4),
                "actual_speedup":
                    round(self.legacy.actual_speedup, 4),
                "rel_error": round(self.legacy_error, 4),
            },
            "argmax": {
                "predicted_speedup":
                    round(self.argmax.predicted_speedup, 4),
                "actual_speedup":
                    round(self.argmax.actual_speedup, 4),
                "model_errors": {m: round(e, 4) for m, e
                                 in sorted(self.model_errors.items())},
            },
            "label": self.label.to_dict(),
        }


def atlas_task(workload, config: HydraConfig = DEFAULT_HYDRA,
               simulate_tls: bool = True, cache=None,
               **jrpm_kwargs) -> AtlasRow:
    """Fleet task: one instance, both pipelines, one atlas row.

    The two runs share ``cache`` — the cached stages (compile,
    annotate, sequential, profile) are model-independent, so the
    second run only redoes estimate/select/simulate.
    """
    jrpm_kwargs.pop("models", None)
    legacy = Jrpm(source=workload.source(), name=workload.name,
                  config=config, cache=cache, **jrpm_kwargs
                  ).run(simulate_tls=simulate_tls)
    argmax = Jrpm(source=workload.source(), name=workload.name,
                  config=config, cache=cache, models="all",
                  **jrpm_kwargs).run(simulate_tls=simulate_tls)
    label = workload.label
    return AtlasRow(
        workload.name, label.family, label.expected_class,
        conformance_row(workload.name, SYNTHETIC, legacy),
        conformance_row(workload.name, SYNTHETIC, argmax),
        check_label(workload, argmax))


class FamilyStats:
    """One family's aggregated error distribution."""

    def __init__(self, family: str, rows: List[AtlasRow],
                 fallback_bound: float = DEFAULT_ERROR_BOUND):
        self.family = family
        self.rows = rows
        self.fallback_bound = fallback_bound

    @property
    def count(self) -> int:
        return len(self.rows)

    @property
    def errors(self) -> List[float]:
        return [r.legacy_error for r in self.rows]

    @property
    def mean_error(self) -> float:
        errs = self.errors
        return sum(errs) / len(errs) if errs else 0.0

    @property
    def max_error(self) -> float:
        return max(self.errors, default=0.0)

    @property
    def min_error(self) -> float:
        return min(self.errors, default=0.0)

    @property
    def over_fallback(self) -> int:
        """Instances whose legacy error exceeds the 40% fallback bound
        the conformance oracle applies to unmeasured programs."""
        return sum(1 for e in self.errors if e > self.fallback_bound)

    @property
    def breaks_fallback(self) -> bool:
        """True when this family produces instances the fallback bound
        would reject — the atlas's bound-breaker flag."""
        return self.over_fallback > 0

    @property
    def bound(self) -> float:
        return FAMILY_ERROR_BOUNDS.get(self.family, self.fallback_bound)

    @property
    def model_errors(self) -> Dict[str, float]:
        """Worst per-model STL error across the family."""
        worst: Dict[str, float] = {}
        for row in self.rows:
            for model, err in row.model_errors.items():
                if err > worst.get(model, -1.0):
                    worst[model] = err
        return worst

    @property
    def labels_satisfied(self) -> int:
        return sum(1 for r in self.rows if r.label.satisfied)

    def to_dict(self) -> Dict:
        return {
            "family": self.family,
            "count": self.count,
            "expected_class": (self.rows[0].expected_class
                               if self.rows else None),
            "mean_error": round(self.mean_error, 4),
            "max_error": round(self.max_error, 4),
            "min_error": round(self.min_error, 4),
            "bound": self.bound,
            "over_fallback": self.over_fallback,
            "breaks_fallback": self.breaks_fallback,
            "model_errors": {m: round(e, 4) for m, e
                             in sorted(self.model_errors.items())},
            "labels_satisfied": self.labels_satisfied,
        }


class ErrorAtlas:
    """The corpus-wide atlas: rows, per-family stats, and the gate."""

    def __init__(self, rows: List,
                 family_bounds: Optional[Dict[str, float]] = None,
                 model_bounds: Optional[Dict[str, float]] = None,
                 fallback_bound: float = DEFAULT_ERROR_BOUND):
        self.rows = rows
        self.family_bounds = dict(FAMILY_ERROR_BOUNDS
                                  if family_bounds is None
                                  else family_bounds)
        self.model_bounds = dict(SYNTH_MODEL_ERROR_BOUNDS
                                 if model_bounds is None
                                 else model_bounds)
        self.fallback_bound = fallback_bound

    @property
    def ok_rows(self) -> List[AtlasRow]:
        return [r for r in self.rows if r.ok]

    @property
    def failed_rows(self) -> List:
        return [r for r in self.rows if not r.ok]

    def families(self) -> List[str]:
        """Family names in first-appearance (registration) order."""
        seen: List[str] = []
        for row in self.ok_rows:
            if row.family not in seen:
                seen.append(row.family)
        return seen

    def family_stats(self, family: str) -> FamilyStats:
        return FamilyStats(
            family,
            [r for r in self.ok_rows if r.family == family],
            fallback_bound=self.fallback_bound)

    def all_family_stats(self) -> List[FamilyStats]:
        return [self.family_stats(f) for f in self.families()]

    def breakers(self) -> List[str]:
        """Families with at least one instance over the fallback bound
        — the programs that would trip the conformance oracle's
        default gate."""
        return [s.family for s in self.all_family_stats()
                if s.breaks_fallback]

    def bound_for(self, family: str) -> float:
        return self.family_bounds.get(family, self.fallback_bound)

    def violations(self) -> List[str]:
        """The synthetic conformance gate: per-instance legacy error
        within its family's measured bound, per-model STL errors
        within the model bounds, and every label satisfied."""
        problems: List[str] = []
        for row in self.rows:
            if not row.ok:
                problems.append("%s: pipeline failed: %s"
                                % (row.name, row.error))
                continue
            bound = self.bound_for(row.family)
            if row.legacy_error > bound:
                problems.append(
                    "%s (%s): legacy prediction error %.1f%% exceeds "
                    "the family's %.1f%% bound (predicted %.2fx, "
                    "actual %.2fx; replay: %s)"
                    % (row.name, row.family, 100 * row.legacy_error,
                       100 * bound, row.legacy.predicted_speedup,
                       row.legacy.actual_speedup, row.label.replay))
            for stl in row.argmax.stls:
                mbound = self.model_bounds.get(stl.model,
                                               self.fallback_bound)
                if stl.speedup_rel_error > mbound:
                    problems.append(
                        "%s L%d (%s): model prediction error %.1f%% "
                        "exceeds the %.1f%% bound (replay: %s)"
                        % (row.name, stl.loop_id, stl.model,
                           100 * stl.speedup_rel_error, 100 * mbound,
                           row.label.replay))
            if not row.label.satisfied:
                problems.append("%s: %s (replay: %s)"
                                % (row.name, row.label.detail,
                                   row.label.replay))
        return problems

    def to_dict(self) -> Dict:
        return {
            "kind": "synth-atlas",
            "fallback_bound": self.fallback_bound,
            "family_bounds": self.family_bounds,
            "model_bounds": self.model_bounds,
            "families": [s.to_dict() for s in self.all_family_stats()],
            "breakers": self.breakers(),
            "instances": [r.to_dict() if r.ok
                          else {"name": r.name, "ok": False,
                                "error": r.error}
                          for r in self.rows],
            "violations": self.violations(),
        }

    def render(self) -> str:
        lines = ["%-10s %-9s %5s %7s %7s %7s %7s %6s  %s"
                 % ("family", "class", "n", "mean%", "max%",
                    "bound%", ">fall", "labels", "models worst")]
        for stats in self.all_family_stats():
            models = " ".join("%s=%.0f%%" % (m, 100 * e) for m, e
                              in sorted(stats.model_errors.items()))
            cls = (stats.rows[0].expected_class
                   if stats.rows else "-")
            lines.append(
                "%-10s %-9s %5d %6.1f%% %6.1f%% %6.1f%% %7d %3d/%-3d %s"
                % (stats.family, cls, stats.count,
                   100 * stats.mean_error, 100 * stats.max_error,
                   100 * self.bound_for(stats.family),
                   stats.over_fallback, stats.labels_satisfied,
                   stats.count, models))
        breakers = self.breakers()
        if breakers:
            lines.append(
                "bound breakers (instances exceed the %.0f%% fallback "
                "the oracle applies to unmeasured programs): %s"
                % (100 * self.fallback_bound, ", ".join(breakers)))
        else:
            lines.append("no family exceeds the %.0f%% fallback bound"
                         % (100 * self.fallback_bound))
        for failed in self.failed_rows:
            lines.append("%-22s FAILED: %s"
                         % (failed.name, failed.error))
        return "\n".join(lines)


#: families whose estimator winner ranking is documented to disagree
#: with the simulator's, the synthetic analogue of
#: KNOWN_WINNER_MISMATCHES: on chase the estimator ranks the serial
#: heap chain's savings above the parallel init loop's because it
#: never sees the chain's misspeculation — the same mechanism that
#: blows its error bound.
WINNER_MISMATCH_FAMILIES: frozenset = frozenset({"chase"})


def synthetic_workload_bounds(instances: Iterable) -> Dict[str, float]:
    """Instance-name -> family-bound map, shaped for
    :func:`repro.conformance.oracle.run_oracle`'s ``workload_bounds``
    — the hook that wires the existing conformance oracle over the
    synthetic corpus with the atlas's measured per-family ceilings."""
    return {w.name: FAMILY_ERROR_BOUNDS.get(
                w.label.family, DEFAULT_ERROR_BOUND)
            for w in instances}


def synthetic_known_mismatches(instances: Iterable) -> frozenset:
    """Instance names :func:`run_oracle`'s winner assertion should
    skip, derived from :data:`WINNER_MISMATCH_FAMILIES`."""
    return frozenset(w.name for w in instances
                     if w.label.family in WINNER_MISMATCH_FAMILIES)


def build_atlas(instances: Optional[Iterable] = None,
                config: HydraConfig = DEFAULT_HYDRA,
                jobs: int = 1, cache=None,
                family_bounds: Optional[Dict[str, float]] = None,
                model_bounds: Optional[Dict[str, float]] = None,
                **executor_kwargs) -> ErrorAtlas:
    """Measure the error atlas over synthetic ``instances`` (default:
    the registered synthetic corpus)."""
    if instances is None:
        from repro.workloads.registry import by_category
        instances = by_category(SYNTHETIC)
    executor = FleetExecutor(jobs=jobs, config=config, cache=cache,
                             on_error="row", task=atlas_task,
                             **executor_kwargs)
    result = executor.run(list(instances))
    return ErrorAtlas(list(result.rows), family_bounds=family_bounds,
                      model_bounds=model_bounds)
