"""The label oracle: known-parallelism labels as executable checks.

A :class:`~repro.synth.families.ParallelismLabel` is a *test oracle*,
not documentation.  For every synthetic instance run through the full
pipeline with the multi-model argmax (``models="all"``):

* **parallel labels** (``doall``/``doacross``) must achieve simulated
  whole-program speedup of at least :data:`PARALLEL_MIN_SPEEDUP` under
  the selected (argmax-winning) execution models — i.e. at least one
  registered model genuinely parallelizes the program;
* **serial labels** must stay at or below
  :data:`SERIAL_MAX_SPEEDUP` — no registered model may claim real
  speedup on a heap-carried dependence chain.

Families are generated so the kernel loop dominates the cycle count
(init/checksum sweeps are a few percent), which is what makes the
whole-program simulated speedup a faithful stand-in for the kernel's
class.  The fuzz campaign and CI gate on these checks through
``jrpm conform --synth`` and ``benchmarks/bench_synth.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jrpm.executor import FleetExecutor
from repro.jrpm.pipeline import Jrpm

#: minimum simulated whole-program speedup a parallel-labelled
#: instance must reach under the argmax pipeline.  Measured corpus
#: minimum is 3.00x (mixed family); 1.25 leaves wide headroom for
#: parameter drift while still failing any instance whose kernel the
#: simulator cannot actually overlap.
PARALLEL_MIN_SPEEDUP = 1.25

#: maximum simulated whole-program speedup a serial-labelled instance
#: may reach.  The kernel is >= ~90% of cycles by construction, so
#: even perfectly parallel init/checksum sweeps cannot lift the
#: program far; measured corpus maximum is 0.98x.
SERIAL_MAX_SPEEDUP = 1.15


class LabelRow:
    """One instance's label-oracle outcome (fleet-row protocol)."""

    ok = True

    def __init__(self, name: str, label_dict: Dict,
                 predicted_speedup: float, actual_speedup: float,
                 selected_models: List[str], replay: str):
        self.name = name
        self.label = label_dict
        self.predicted_speedup = predicted_speedup
        self.actual_speedup = actual_speedup
        #: models the argmax actually selected (and simulated)
        self.selected_models = list(selected_models)
        #: one-liner regenerating this instance (jrpm synth ...)
        self.replay = replay

    @property
    def family(self) -> str:
        return self.label["family"]

    @property
    def expected_class(self) -> str:
        return self.label["expected_class"]

    @property
    def parallel(self) -> bool:
        return self.expected_class in ("doall", "doacross")

    @property
    def satisfied(self) -> bool:
        if self.parallel:
            return self.actual_speedup >= PARALLEL_MIN_SPEEDUP
        return self.actual_speedup <= SERIAL_MAX_SPEEDUP

    @property
    def detail(self) -> str:
        if self.parallel:
            return ("labelled %s but simulated %.2fx < %.2fx minimum "
                    "under models %s"
                    % (self.expected_class, self.actual_speedup,
                       PARALLEL_MIN_SPEEDUP,
                       ",".join(self.selected_models) or "(none)"))
        return ("labelled serial but simulated %.2fx > %.2fx maximum "
                "(models %s)"
                % (self.actual_speedup, SERIAL_MAX_SPEEDUP,
                   ",".join(self.selected_models) or "(none)"))

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "family": self.family,
            "expected_class": self.expected_class,
            "carried": list(self.label.get("carried", ())),
            "predicted_speedup": round(self.predicted_speedup, 4),
            "actual_speedup": round(self.actual_speedup, 4),
            "selected_models": self.selected_models,
            "satisfied": self.satisfied,
            "replay": self.replay,
        }


def check_label(workload, report) -> LabelRow:
    """Distill one multi-model :class:`JrpmReport` into its label row.

    ``workload`` must be a
    :class:`~repro.synth.families.SyntheticWorkload` (carries the
    label).
    """
    selected_models = sorted({
        getattr(sel, "model", "hydra-tls")
        for sel in report.selection.selected})
    return LabelRow(
        workload.name, workload.label.to_dict(),
        report.predicted_speedup, report.actual_speedup,
        selected_models, workload.replay_hint())


def label_task(workload, config: HydraConfig = DEFAULT_HYDRA,
               simulate_tls: bool = True, cache=None,
               **jrpm_kwargs) -> LabelRow:
    """Fleet task: one synthetic instance through the argmax pipeline,
    gated against its label.  Module-level, hence picklable."""
    jrpm_kwargs.setdefault("models", "all")
    report = Jrpm(source=workload.source(), name=workload.name,
                  config=config, cache=cache, **jrpm_kwargs
                  ).run(simulate_tls=simulate_tls)
    return check_label(workload, report)


class LabelReport:
    """The whole corpus's label-oracle outcome."""

    def __init__(self, rows: List):
        self.rows = rows

    @property
    def ok_rows(self) -> List[LabelRow]:
        return [r for r in self.rows if r.ok]

    @property
    def failed_rows(self) -> List:
        return [r for r in self.rows if not r.ok]

    def violations(self) -> List[str]:
        problems: List[str] = []
        for row in self.rows:
            if not row.ok:
                problems.append("%s: pipeline failed: %s"
                                % (row.name, row.error))
                continue
            if not row.satisfied:
                problems.append("%s: %s (replay: %s)"
                                % (row.name, row.detail, row.replay))
        return problems

    def to_dict(self) -> Dict:
        return {
            "kind": "label-oracle",
            "parallel_min_speedup": PARALLEL_MIN_SPEEDUP,
            "serial_max_speedup": SERIAL_MAX_SPEEDUP,
            "instances": [r.to_dict() if r.ok
                          else {"name": r.name, "ok": False,
                                "error": r.error}
                          for r in self.rows],
            "violations": self.violations(),
        }

    def render(self) -> str:
        lines = ["%-22s %-10s %-9s %9s %9s  %s"
                 % ("instance", "family", "class", "predicted",
                    "actual", "label")]
        for row in self.rows:
            if not row.ok:
                lines.append("%-22s FAILED: %s" % (row.name, row.error))
                continue
            lines.append("%-22s %-10s %-9s %8.2fx %8.2fx  %s"
                         % (row.name, row.family, row.expected_class,
                            row.predicted_speedup, row.actual_speedup,
                            "ok" if row.satisfied else "VIOLATED"))
        good = sum(1 for r in self.ok_rows if r.satisfied)
        lines.append("label oracle: %d/%d instances satisfy their "
                     "labels" % (good, len(self.rows)))
        return "\n".join(lines)


def run_label_oracle(instances: Optional[Iterable] = None,
                     config: HydraConfig = DEFAULT_HYDRA,
                     jobs: int = 1, cache=None,
                     **executor_kwargs) -> LabelReport:
    """Run the label oracle over synthetic ``instances`` (default: the
    registered synthetic corpus)."""
    if instances is None:
        from repro.workloads.registry import SYNTHETIC, by_category
        instances = by_category(SYNTHETIC)
    executor = FleetExecutor(jobs=jobs, config=config, cache=cache,
                             on_error="row", task=label_task,
                             **executor_kwargs)
    result = executor.run(list(instances))
    return LabelReport(list(result.rows))
