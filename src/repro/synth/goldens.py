"""Pinned per-family golden programs (``tests/goldens_synth.json``).

The synthesizer's determinism contract — same seed, same family, same
index, byte-identical source — is enforced two ways: property tests
regenerate instances under permuted call orders, and this corpus pins
**instance 0 of every family at the default seed** on disk: the full
source text plus its sequentially-interpreted ``cycles`` /
``instructions`` / ``return_value`` and the parallelism label class.

Any change to a generator — even an innocuous-looking tweak to
parameter sampling — shifts every downstream consumer (atlas bounds,
label thresholds, bench baselines), so it must show up as an explicit
regeneration (``jrpm conform --update-goldens``) in the same commit,
exactly like the Table 6 goldens drift gate.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.conformance.goldens import META_KEY, load_goldens
from repro.runtime.interpreter import run_program
from repro.synth.families import (
    DEFAULT_SYNTH_SEED,
    family_names,
    generate_instance,
)

SYNTH_GOLDENS_VERSION = 1


def golden_instances() -> List:
    """The pinned programs: instance 0 per family, default seed."""
    return [generate_instance(name, 0, DEFAULT_SYNTH_SEED)
            for name in family_names()]


def compute_synth_goldens() -> Dict[str, Dict]:
    """Regenerate every pinned program and measure its sequential
    reference run."""
    goldens: Dict[str, Dict] = {}
    for workload in golden_instances():
        result = run_program(workload.compile())
        goldens[workload.label.family] = {
            "name": workload.name,
            "expected_class": workload.label.expected_class,
            "source": workload.source(),
            "cycles": result.cycles,
            "instructions": result.instructions,
            "return_value": result.return_value,
        }
    return goldens


def synth_goldens_payload(goldens: Dict[str, Dict]) -> Dict:
    payload = dict(goldens)
    payload[META_KEY] = {
        "version": SYNTH_GOLDENS_VERSION,
        "generator": "jrpm conform --update-goldens",
        "base_seed": DEFAULT_SYNTH_SEED,
        "families": len(goldens),
    }
    return payload


def render_synth_goldens(payload: Dict) -> str:
    """Same canonical serialization as the Table 6 corpus, so both
    drift gates share byte-for-byte regeneration semantics."""
    return json.dumps(payload, indent=1, sort_keys=True)


def update_synth_goldens(path: str) -> Dict:
    """Regenerate the pinned corpus at ``path``; returns the payload."""
    payload = synth_goldens_payload(compute_synth_goldens())
    with open(path, "w") as handle:
        handle.write(render_synth_goldens(payload))
    return payload


def synth_goldens_drift(path: str) -> List[str]:
    """Differences between the stored pinned programs and a fresh
    regeneration (empty list = generators unchanged).

    Source drift is summarized (first differing line) rather than
    dumped whole, so a failure names the generator that moved.
    """
    problems: List[str] = []
    if not os.path.exists(path):
        return ["synthetic golden corpus missing at %s" % path]
    stored = load_goldens(path)
    fresh = synth_goldens_payload(compute_synth_goldens())
    meta = stored.get(META_KEY)
    if not isinstance(meta, dict):
        problems.append("corpus has no %s stamp; regenerate with "
                        "--update-goldens" % META_KEY)
    elif meta.get("version") != SYNTH_GOLDENS_VERSION:
        problems.append("corpus version %r != current %d"
                        % (meta.get("version"), SYNTH_GOLDENS_VERSION))
    elif meta.get("base_seed") != DEFAULT_SYNTH_SEED:
        problems.append("corpus pinned at seed %r != default %d"
                        % (meta.get("base_seed"), DEFAULT_SYNTH_SEED))
    for family in sorted(set(stored) | set(fresh)):
        if family == META_KEY:
            continue
        if family not in fresh:
            problems.append("%s: stored but no longer a family"
                            % family)
            continue
        if family not in stored:
            problems.append("%s: family registered but missing from "
                            "corpus" % family)
            continue
        for field in sorted(set(stored[family]) | set(fresh[family])):
            old = stored[family].get(field)
            new = fresh[family].get(field)
            if old == new:
                continue
            if field == "source":
                problems.append(
                    "%s.source: pinned program text changed (%s)"
                    % (family, _first_source_diff(old, new)))
            else:
                problems.append("%s.%s: stored %r, measured %r"
                                % (family, field, old, new))
    if not problems and render_synth_goldens(fresh) != \
            open(path).read():
        problems.append("corpus bytes differ from canonical "
                        "serialization; regenerate with "
                        "--update-goldens")
    return problems


def _first_source_diff(old, new) -> str:
    old_lines = (old or "").splitlines()
    new_lines = (new or "").splitlines()
    for i, (a, b) in enumerate(zip(old_lines, new_lines), start=1):
        if a != b:
            return "first diff at line %d: %r -> %r" % (i, a, b)
    return "line count %d -> %d" % (len(old_lines), len(new_lines))
