"""Family-based workload synthesizer (known-parallelism labels).

Importing this package hooks one lazy loader per family into the
workload registry (:func:`repro.workloads.registry.register_family`),
so the default corpus — :data:`~repro.synth.families.DEFAULT_PER_FAMILY`
instances of each family at the pinned default seed — appears under the
``synthetic`` category on first registry access and is addressable by
name from ``jrpm run``/``fleet``/``conform`` and the analysis service.

Heavier machinery stays in submodules to keep registry access cheap:

* :mod:`repro.synth.families` — the generators and labels
* :mod:`repro.synth.oracle` — the label oracle (parallel families must
  speed up under >= 1 model, serial must not)
* :mod:`repro.synth.atlas` — the per-family estimator error atlas
* :mod:`repro.synth.goldens` — the pinned per-family golden programs
"""

from repro.synth.families import (
    CLASS_DOACROSS,
    CLASS_DOALL,
    CLASS_SERIAL,
    DEFAULT_PER_FAMILY,
    DEFAULT_SYNTH_SEED,
    FAMILIES,
    Family,
    LABEL_CLASSES,
    PARALLEL_CLASSES,
    ParallelismLabel,
    SyntheticWorkload,
    default_corpus,
    family_names,
    generate_corpus,
    generate_family,
    generate_instance,
    get_family,
    instance_name,
)
from repro.workloads.registry import register_family


def _default_loader(family_name):
    """One lazy loader per family (late-bound to survive reset)."""
    def load():
        from repro.synth.families import generate_family
        return generate_family(family_name, DEFAULT_PER_FAMILY,
                               DEFAULT_SYNTH_SEED)
    return load


for _name in family_names():
    register_family(_name, _default_loader(_name))

__all__ = [
    "CLASS_DOACROSS",
    "CLASS_DOALL",
    "CLASS_SERIAL",
    "DEFAULT_PER_FAMILY",
    "DEFAULT_SYNTH_SEED",
    "FAMILIES",
    "Family",
    "LABEL_CLASSES",
    "PARALLEL_CLASSES",
    "ParallelismLabel",
    "SyntheticWorkload",
    "default_corpus",
    "family_names",
    "generate_corpus",
    "generate_family",
    "generate_instance",
    "get_family",
    "instance_name",
]
