"""Family-based workload synthesizer with known-parallelism labels.

The fuzz :class:`~repro.fuzz.generator.ProgramGenerator` (PR 5) emits
*random valid* programs — good for differential testing, useless for
mapping the estimator, because nobody knows what the right answer is.
This module promotes generation to *families*: each
:class:`Family` emits deterministic, seeded minijava whose parallelism
structure is known **by construction**, carried alongside the source as
a :class:`ParallelismLabel`:

* ``doall`` — the kernel loop(s) have no loop-carried dependence;
  some registered execution model must achieve real simulated speedup.
* ``doacross`` — the kernel carries a dependence that post/wait (or
  TLS) can overlap; some model must still achieve speedup, and the
  selector should find DOACROSS competitive on at least some instances.
* ``serial`` — the kernel carries a tight heap-routed dependence chain
  that no registered model can break; simulated speedup must stay ~1x.

Labels are therefore *test oracles*, not documentation: the label
oracle (:mod:`repro.synth.oracle`) runs instances through the full
pipeline and gates the simulated outcome against the label, and the
error atlas (:mod:`repro.synth.atlas`) maps where Equation 1's error
bound actually breaks, family by family.

Determinism contract: ``generate_instance(family, i, seed)`` derives a
private ``random.Random`` from ``(seed, family, i)`` (string-seeded, so
stable across platforms and Python versions) and never shares state —
the same triple yields byte-identical source regardless of generation
order or prior generator use.  Every emitted program's ``main()``
returns a checksum over all mutable state, so any semantic divergence
is observable.

The five families (paper Section 6's missing diversity axis):

========= ========== ==============================================
family    class      kernel shape
========= ========== ==============================================
stencil   doall      3-point Jacobi sweeps, src/dst double buffer
reduction doacross   scalar or binned-array reduction with work
chase     serial     pointer chase through an index array, heap-
                     carried via ``cur[0]`` (the Eq. 1 bound breaker)
graph     doall      irregular fixed-degree graph gather, disjoint
                     per-node writes
mixed     doacross   nested sweeps with a controllable fraction of
                     cross-iteration ``a[i-d] -> a[i]`` heap arcs
========= ========== ==============================================
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.workloads.registry import SYNTHETIC, Workload

#: base seed of the default (auto-registered) corpus.  Pinned — the
#: default corpus is part of the test surface (goldens pin one program
#: per family), so it must not follow JRPM_TEST_SEED.
DEFAULT_SYNTH_SEED = 20260808

#: instances per family in the default corpus
DEFAULT_PER_FAMILY = 20

#: label classes
CLASS_DOALL = "doall"
CLASS_DOACROSS = "doacross"
CLASS_SERIAL = "serial"

LABEL_CLASSES = (CLASS_DOALL, CLASS_DOACROSS, CLASS_SERIAL)

#: classes whose instances must achieve simulated speedup
PARALLEL_CLASSES = (CLASS_DOALL, CLASS_DOACROSS)


class ParallelismLabel:
    """Known-parallelism ground truth for one generated instance."""

    def __init__(self, expected_class: str, carried: Tuple[str, ...],
                 family: str, index: int, base_seed: int,
                 params: Dict):
        if expected_class not in LABEL_CLASSES:
            raise ValueError("unknown parallelism class %r"
                             % expected_class)
        self.expected_class = expected_class
        #: human-readable description of the loop(s) carrying the
        #: dependence, empty for doall kernels
        self.carried = tuple(carried)
        self.family = family
        self.index = index
        self.base_seed = base_seed
        #: the sampled generator parameters (ints/strings only)
        self.params = dict(params)

    @property
    def parallel(self) -> bool:
        return self.expected_class in PARALLEL_CLASSES

    def to_dict(self) -> Dict:
        return {
            "expected_class": self.expected_class,
            "carried": list(self.carried),
            "family": self.family,
            "index": self.index,
            "base_seed": self.base_seed,
            "params": dict(self.params),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ParallelismLabel %s/%d %s>" % (
            self.family, self.index, self.expected_class)


class SyntheticWorkload(Workload):
    """A generated registry workload carrying its parallelism label."""

    def __init__(self, name: str, description: str, source_text: str,
                 label: ParallelismLabel):
        Workload.__init__(
            self, name=name, category=SYNTHETIC,
            description=description, source_text=source_text,
            # family:base_seed:index — enough to regenerate this exact
            # instance with one jrpm synth invocation
            dataset="%s:%d:%d" % (label.family, label.base_seed,
                                  label.index))
        self.label = label

    def replay_hint(self) -> str:
        """The one-liner that regenerates exactly this instance."""
        return ("jrpm synth --families %s --seed %d --per-family %d"
                % (self.label.family, self.label.base_seed,
                   self.label.index + 1))


def instance_name(family: str, index: int,
                  base_seed: int = DEFAULT_SYNTH_SEED) -> str:
    """Registry name for one instance.  Default-corpus instances get
    the short stable form; other seeds are namespaced by seed so ad-hoc
    generations can coexist with the registered corpus."""
    if base_seed == DEFAULT_SYNTH_SEED:
        return "synth-%s-%03d" % (family, index)
    return "synth-%s-s%d-%03d" % (family, base_seed, index)


def _rng(family: str, index: int, base_seed: int) -> random.Random:
    # string seeding hashes via SHA-512 (random.seed version 2):
    # deterministic across runs, platforms, and Python versions
    return random.Random("jrpm-synth:%d:%s:%d"
                         % (base_seed, family, index))


class Family:
    """One parameterized program family.

    Subclasses implement :meth:`sample` (draw parameters from the
    instance rng) and :meth:`emit` (deterministically render source +
    label fragments from those parameters).
    """

    name = "family"
    description = ""
    expected_class = CLASS_DOALL

    def sample(self, rng: random.Random) -> Dict:
        raise NotImplementedError

    def emit(self, params: Dict) -> Tuple[str, Tuple[str, ...]]:
        """Return ``(source_text, carried_dependences)``."""
        raise NotImplementedError

    def generate(self, index: int,
                 base_seed: int = DEFAULT_SYNTH_SEED
                 ) -> SyntheticWorkload:
        rng = _rng(self.name, index, base_seed)
        params = self.sample(rng)
        source, carried = self.emit(params)
        label = ParallelismLabel(self.expected_class, carried,
                                 self.name, index, base_seed, params)
        return SyntheticWorkload(
            name=instance_name(self.name, index, base_seed),
            description="%s [%s]" % (self.description,
                                     self.expected_class),
            source_text=source, label=label)


# ---------------------------------------------------------------------------
# the five families


class StencilFamily(Family):
    """DOALL: 3-point Jacobi sweeps over a double buffer.

    Each sweep iteration reads only the *other* buffer, so the kernel
    loops carry nothing; the outer timestep loop alternates buffers
    and is deliberately cheap next to the sweeps it wraps.
    """

    name = "stencil"
    description = "3-point Jacobi stencil, double-buffered"
    expected_class = CLASS_DOALL

    def sample(self, rng: random.Random) -> Dict:
        return {
            "n": rng.randrange(96, 257, 16),
            "steps": rng.randint(2, 4),
            "w0": rng.randint(1, 4),
            "w1": rng.randint(1, 4),
            "w2": rng.randint(1, 4),
            "init_a": rng.randint(3, 97),
            "init_b": rng.randint(1, 53),
            "mod": rng.choice([251, 509, 1021]),
        }

    def emit(self, params: Dict) -> Tuple[str, Tuple[str, ...]]:
        p = params
        src = """\
// synth:stencil — DOALL 3-point Jacobi, double-buffered
func main() {
  var n = %(n)d;
  var src = array(%(n)d);
  var dst = array(%(n)d);
  for (var i0 = 0; i0 < n; i0 = i0 + 1) {
    src[i0] = (i0 * %(init_a)d + %(init_b)d) %% %(mod)d;
  }
  for (var t = 0; t < %(steps)d; t = t + 1) {
    // kernel loop (doall): reads src only, writes dst only
    for (var i = 1; i < n - 1; i = i + 1) {
      dst[i] = (%(w0)d * src[i - 1] + %(w1)d * src[i]
                + %(w2)d * src[i + 1]) %% %(mod)d;
    }
    // copy-back sweep (doall): disjoint writes into src
    for (var j = 1; j < n - 1; j = j + 1) {
      src[j] = dst[j];
    }
  }
  var check = 0;
  for (var k = 0; k < n; k = k + 1) {
    check = (check * 31 + src[k]) %% 1000003;
  }
  return check;
}
""" % p
        return src, ()


class ReductionFamily(Family):
    """DOACROSS-friendly: scalar or binned-array reduction with per-
    iteration work.

    The scalar variant carries ``s`` (a local recurrence — exactly what
    the DOACROSS live-in predictor covers); the array variant folds
    into ``acc[i & (bins-1)]``, a heap recurrence at distance ``bins``
    that post/wait overlaps.
    """

    name = "reduction"
    description = "scalar/binned-array reduction with work"
    expected_class = CLASS_DOACROSS

    def sample(self, rng: random.Random) -> Dict:
        return {
            "n": rng.randrange(256, 769, 64),
            "kind": rng.choice(["scalar", "array"]),
            "bins": rng.choice([8, 16]),
            "c1": rng.randint(3, 31),
            "c2": rng.randint(3, 31),
            "mask": rng.choice([63, 127, 255]),
            "m1": rng.choice([89, 97, 127]),
            "init_a": rng.randint(5, 41),
            "init_b": rng.randint(1, 23),
        }

    def emit(self, params: Dict) -> Tuple[str, Tuple[str, ...]]:
        p = dict(params)
        if p["kind"] == "scalar":
            decl = "  var s = 0;"
            fold = "    s = (s + y) %% 1000003;" % ()
            finish = "  var check = s;"
            carried = ("kernel: scalar s (local recurrence, "
                       "predictor-coverable)",)
        else:
            decl = "  var acc = array(%(bins)d);" % p
            fold = "    acc[i & %d] = (acc[i & %d] + y) %% 1000003;" \
                % (p["bins"] - 1, p["bins"] - 1)
            finish = ("  var check = 0;\n"
                      "  for (var b = 0; b < %(bins)d; b = b + 1) {\n"
                      "    check = (check * 31 + acc[b]) %% 1000003;\n"
                      "  }") % p
            carried = ("kernel: acc[i & %d] (heap recurrence at "
                       "distance %d)" % (p["bins"] - 1, p["bins"]),)
        src = """\
// synth:reduction — %(kind)s reduction with per-iteration work
func main() {
  var n = %(n)d;
  var a = array(%(n)d);
  for (var i0 = 0; i0 < n; i0 = i0 + 1) {
    a[i0] = (i0 * %(init_a)d + %(init_b)d) %% 211;
  }
""" % p
        src += decl + "\n"
        src += """\
  // kernel loop (doacross-friendly): reduction carried across
  // iterations, per-iteration work is independent
  for (var i = 0; i < n; i = i + 1) {
    var x = a[i];
    var y = ((x * %(c1)d) %% %(m1)d) + ((x * %(c2)d) & %(mask)d);
""" % p
        src += fold + "\n  }\n"
        src += finish + "\n"
        src += "  return check;\n}\n"
        return src, carried


class ChaseFamily(Family):
    """Serial: pointer chase through an index array, carried via the
    heap cell ``cur[0]``.

    The dependence is routed through memory on purpose: a local-carried
    chase (``p = next[p]``) would be "covered" by the DOACROSS timing
    predictor, but nothing covers a heap cell that every iteration
    loads first and stores last.  The tiny thread bodies are also the
    family's reason to exist in the atlas: Equation 1 models the chain
    as arc-separation delay, while the TLS simulator pays a restart per
    violated thread — the same mismatch class as the BitOps outlier —
    so this family is where the 40% fallback bound measurably breaks.
    """

    name = "chase"
    description = "heap-carried pointer chase over an index array"
    expected_class = CLASS_SERIAL

    def sample(self, rng: random.Random) -> Dict:
        return {
            "n": rng.randrange(32, 97, 8),
            "steps": rng.randrange(1200, 2201, 100),
            "pa": rng.randint(3, 61) * 2 + 1,
            "pb": rng.randint(1, 31),
            # "bare" is the minimal body (the strongest bound
            # breaker); "acc" adds one accumulation statement
            "variant": rng.choice(["bare", "acc"]),
        }

    def emit(self, params: Dict) -> Tuple[str, Tuple[str, ...]]:
        p = dict(params)
        body = "    cur[0] = next[cur[0]];\n"
        acc_decl = ""
        ret = "  return cur[0];"
        if p["variant"] == "acc":
            acc_decl = "  var acc = 0;\n"
            body = ("    var q = next[cur[0]];\n"
                    "    acc = (acc + q) %% 1000003;\n"
                    "    cur[0] = q;\n") % ()
            ret = "  return acc * %(n)d + cur[0];" % p
        src = """\
// synth:chase — serial pointer chase, heap-carried via cur[0]
func main() {
  var n = %(n)d;
  var next = array(%(n)d);
  var cur = array(1);
  for (var i0 = 0; i0 < n; i0 = i0 + 1) {
    next[i0] = (i0 * %(pa)d + %(pb)d) %% n;
  }
  cur[0] = 0;
""" % p
        src += acc_decl
        src += ("  // kernel loop (serial): cur[0] -> cur[0] heap "
                "chain, tiny body\n")
        src += "  for (var t = 0; t < %(steps)d; t = t + 1) {\n" % p
        src += body
        src += "  }\n"
        src += ret + "\n}\n"
        return src, ("kernel: cur[0] -> cur[0] (heap chain, every "
                     "iteration)",)


class GraphFamily(Family):
    """DOALL: irregular fixed-degree graph gather.

    Every node reads an arbitrary (hash-scattered) neighbor set from
    read-only adjacency/value arrays and writes only its own ``out``
    slot — irregular accesses, zero cross-iteration dependences.  An
    optional second round re-gathers from the first round's output,
    making the *round* loop carry while the node loops stay doall.
    """

    name = "graph"
    description = "irregular fixed-degree graph gather"
    expected_class = CLASS_DOALL

    def sample(self, rng: random.Random) -> Dict:
        return {
            "nodes": rng.randrange(32, 65, 8),
            "degree": rng.choice([4, 6, 8]),
            "ea": rng.randint(7, 131) * 2 + 1,
            "eb": rng.randint(1, 37),
            "va": rng.randint(3, 29),
            "vb": rng.randint(1, 17),
            "rounds": rng.randint(1, 2),
        }

    def emit(self, params: Dict) -> Tuple[str, Tuple[str, ...]]:
        p = dict(params)
        p["edges"] = p["nodes"] * p["degree"]
        src = """\
// synth:graph — DOALL irregular gather, disjoint per-node writes
func main() {
  var n = %(nodes)d;
  var deg = %(degree)d;
  var edges = array(%(edges)d);
  var val = array(%(nodes)d);
  var out = array(%(nodes)d);
  for (var e = 0; e < %(edges)d; e = e + 1) {
    edges[e] = (e * %(ea)d + %(eb)d) %% n;
  }
  for (var v = 0; v < n; v = v + 1) {
    val[v] = (v * %(va)d + %(vb)d) %% 211;
  }
  for (var r = 0; r < %(rounds)d; r = r + 1) {
    // kernel loop (doall): reads val/edges, writes only out[u]
    for (var u = 0; u < n; u = u + 1) {
      var sum = 0;
      for (var k = 0; k < deg; k = k + 1) {
        var w = edges[u * deg + k];
        sum = (sum + val[w] * (k + 1)) %% 1000003;
      }
      out[u] = sum;
    }
    // feedback sweep (doall): next round gathers from this one
    for (var c = 0; c < n; c = c + 1) {
      val[c] = out[c];
    }
  }
  var check = 0;
  for (var z = 0; z < n; z = z + 1) {
    check = (check * 31 + out[z]) %% 1000003;
  }
  return check;
}
""" % p
        return src, ()


class MixedFamily(Family):
    """DOACROSS-friendly: nested sweeps with a controllable fraction
    of cross-iteration heap arcs.

    Every iteration rewrites ``a[i]``; every ``k``-th additionally
    reads ``a[i - dist]`` — a real heap dependence at distance
    ``dist`` carried by a 1/k fraction of iterations (``dep_fraction``
    in the label params).  Small fractions leave plenty of overlap for
    post/wait; the arc pattern (rare, data-independent) is also where
    Equation 1's arc-frequency averaging is stress-tested.
    """

    name = "mixed"
    description = "mixed nest, controllable cross-iteration deps"
    expected_class = CLASS_DOACROSS

    def sample(self, rng: random.Random) -> Dict:
        k = rng.choice([4, 8, 16])
        return {
            "n": rng.randrange(384, 769, 64),
            "k": k,
            "dist": rng.choice([1, 2]),
            "passes": rng.randint(1, 2),
            "c1": rng.randint(3, 29),
            "mod": rng.choice([251, 509]),
            "init_a": rng.randint(5, 43),
            "init_b": rng.randint(1, 19),
        }

    def emit(self, params: Dict) -> Tuple[str, Tuple[str, ...]]:
        p = dict(params)
        p["kmask"] = p["k"] - 1
        src = """\
// synth:mixed — a[i-%(dist)d] -> a[i] heap arc on every %(k)dth
// iteration (dep fraction 1/%(k)d)
func main() {
  var n = %(n)d;
  var a = array(%(n)d);
  for (var i0 = 0; i0 < n; i0 = i0 + 1) {
    a[i0] = (i0 * %(init_a)d + %(init_b)d) %% %(mod)d;
  }
  for (var ps = 0; ps < %(passes)d; ps = ps + 1) {
    // kernel loop (doacross-friendly): rare heap arcs, mostly
    // independent iterations
    for (var i = %(dist)d; i < n; i = i + 1) {
      var x = (a[i] * %(c1)d + i) %% %(mod)d;
      if ((i & %(kmask)d) == 0) {
        x = (x + a[i - %(dist)d]) %% %(mod)d;
      }
      a[i] = x;
    }
  }
  var check = 0;
  for (var z = 0; z < n; z = z + 1) {
    check = (check * 31 + a[z]) %% 1000003;
  }
  return check;
}
""" % p
        carried = ("kernel: a[i-%(dist)d] -> a[i] (heap, every "
                   "%(k)dth iteration)" % p,)
        return src, carried


#: the registered families, in canonical order
FAMILIES: Dict[str, Family] = {}
for _fam in (StencilFamily(), ReductionFamily(), ChaseFamily(),
             GraphFamily(), MixedFamily()):
    FAMILIES[_fam.name] = _fam


def family_names() -> List[str]:
    """All family names, in canonical order."""
    return list(FAMILIES)


def get_family(name: str) -> Family:
    """Look up one family (KeyError if unknown)."""
    return FAMILIES[name]


def generate_instance(family: str, index: int,
                      base_seed: int = DEFAULT_SYNTH_SEED
                      ) -> SyntheticWorkload:
    """Deterministically (re)generate one instance."""
    return get_family(family).generate(index, base_seed)


def generate_family(family: str, per_family: int,
                    base_seed: int = DEFAULT_SYNTH_SEED
                    ) -> List[SyntheticWorkload]:
    """Instances ``0..per_family-1`` of one family."""
    fam = get_family(family)
    return [fam.generate(i, base_seed) for i in range(per_family)]


def generate_corpus(families: Optional[Iterable[str]] = None,
                    per_family: int = DEFAULT_PER_FAMILY,
                    base_seed: int = DEFAULT_SYNTH_SEED
                    ) -> List[SyntheticWorkload]:
    """The cross product: ``per_family`` instances of each family, in
    canonical family order."""
    names = list(families) if families is not None else family_names()
    out: List[SyntheticWorkload] = []
    for name in names:
        out.extend(generate_family(name, per_family, base_seed))
    return out


def default_corpus(per_family: int = DEFAULT_PER_FAMILY
                   ) -> List[SyntheticWorkload]:
    """The auto-registered corpus: every family at the pinned default
    seed.  ``per_family`` trims for smoke subsets (prefixes of the full
    corpus, so instance identities are stable)."""
    return generate_corpus(per_family=per_family,
                           base_seed=DEFAULT_SYNTH_SEED)
