"""Hydra CMP machine model: configuration (Tables 1 & 2), speculative
buffer models, and the Table 5 transistor budget."""

from repro.hydra.cache import FullyAssocBuffer, SetAssocCache
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.hydra.transistors import (
    TransistorBudget,
    TransistorRow,
    comparator_bank_transistors,
    write_buffer_transistors,
)

__all__ = [
    "DEFAULT_HYDRA",
    "FullyAssocBuffer",
    "HydraConfig",
    "SetAssocCache",
    "TransistorBudget",
    "TransistorRow",
    "comparator_bank_transistors",
    "write_buffer_transistors",
]
