"""Transistor-count estimate for Hydra with TLS and TEST support.

Reproduces Table 5 of the paper from structure sizes.  The model:

* SRAM data bits cost 6 transistors (6T cell);
* CAM bits (fully associative tag match) cost 10 transistors;
* register/flip-flop bits cost 8 transistors;
* an n-bit magnitude comparator costs ``COMPARATOR_T_PER_BIT`` per bit;
* random control logic is a calibrated multiplier on datapath cells.

The CPU core count is an opaque constant (the paper likewise quotes a
single 2500K figure for a MIPS integer+FP core).  The headline claim —
the TEST comparator-bank array adds **< 1 %** of the CMP's transistors —
is what the reproduction checks; absolute per-row values track the
paper's to within rounding/calibration.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.hydra.config import DEFAULT_HYDRA, HydraConfig

SRAM_T_PER_BIT = 6
CAM_T_PER_BIT = 10
REG_T_PER_BIT = 8
COMPARATOR_T_PER_BIT = 60       # comparator + pipeline latch + wiring
ADDER_T_PER_BIT = 28
#: multiplier for decoders, sense amps, muxes and control
CONTROL_OVERHEAD = 1.15

#: Paper's figure for one single-issue MIPS core with FP (transistors).
CPU_CORE_TRANSISTORS = 2_500_000

#: Address/timestamp width used throughout the TEST datapath.
WORD_BITS = 32


class TransistorRow(NamedTuple):
    """One row of Table 5."""

    structure: str
    count: int           # instances
    each: int            # transistors per instance
    total: int           # transistors

    @property
    def each_k(self) -> int:
        return round(self.each / 1000)

    @property
    def total_k(self) -> int:
        return round(self.total / 1000)


def sram_transistors(data_bytes: int, tag_bits_per_line: int = 0,
                     n_lines: int = 0) -> int:
    """SRAM array: data bits + per-line tag bits, with control overhead."""
    bits = data_bytes * 8 + tag_bits_per_line * n_lines
    return int(bits * SRAM_T_PER_BIT * CONTROL_OVERHEAD)


def l1_pair_transistors(config: HydraConfig) -> int:
    """One CPU's 16 kB I-cache + 16 kB D-cache with speculation tag bits."""
    icache = sram_transistors(16 * 1024, tag_bits_per_line=20,
                              n_lines=16 * 1024 // config.line_size)
    # D-cache lines carry extra speculative read/modified tag bits
    dcache = sram_transistors(16 * 1024, tag_bits_per_line=20 + 10,
                              n_lines=16 * 1024 // config.line_size)
    return icache + dcache


def l2_transistors() -> int:
    """The shared 2 MB on-chip L2 (tag overhead folded into the array)."""
    return sram_transistors(2 * 1024 * 1024)


def write_buffer_transistors(config: HydraConfig) -> int:
    """One 2 kB speculative store buffer: SRAM data + CAM tags + state."""
    data = config.store_buffer_lines * config.line_size * 8 * SRAM_T_PER_BIT
    tag_bits = 27  # line address tag for fully associative match
    cam = config.store_buffer_lines * tag_bits * CAM_T_PER_BIT
    # per-line valid bits + byte write masks
    state = config.store_buffer_lines * (config.line_size + 2) * REG_T_PER_BIT
    control = 0.35 * (data + cam + state)  # priority encode, drain logic
    return int(data + cam + state + control)


def comparator_bank_transistors(n_comparators: int = 8) -> int:
    """One TEST comparator bank (Figure 7): comparators, timestamp
    registers, statistics counters, accumulators, and control."""
    comparators = n_comparators * WORD_BITS * COMPARATOR_T_PER_BIT
    # thread-start timestamps (n_cpus deep shift chain) + last-LD/ST
    # timestamp registers + critical-arc length registers
    registers = 20 * WORD_BITS * REG_T_PER_BIT
    # statistics counters (threads, entries, cycles, arcs x2, lengths x2,
    # loaded/stored lines, overflows)
    counters = 10 * WORD_BITS * (REG_T_PER_BIT + 4)  # +4: increment logic
    adders = 2 * WORD_BITS * ADDER_T_PER_BIT
    datapath = comparators + registers + counters + adders
    control = 0.45 * datapath  # allocation FSM, pipeline, muxing
    return int(datapath + control)


class TransistorBudget:
    """The full Table 5, computed from a :class:`HydraConfig`."""

    def __init__(self, config: HydraConfig = DEFAULT_HYDRA,
                 n_write_buffers: int = 5):
        self.config = config
        self.rows: List[TransistorRow] = []
        cpu = CPU_CORE_TRANSISTORS
        l1 = l1_pair_transistors(config)
        l2 = l2_transistors()
        wb = write_buffer_transistors(config)
        bank = comparator_bank_transistors()
        self.rows = [
            TransistorRow("CPU + FP core", config.n_cpus, cpu,
                          config.n_cpus * cpu),
            TransistorRow("16kB I / 16kB D Cache", config.n_cpus, l1,
                          config.n_cpus * l1),
            TransistorRow("2MB L2 cache", 1, l2, l2),
            TransistorRow("Write buffer", n_write_buffers, wb,
                          n_write_buffers * wb),
            TransistorRow("Comparator bank", config.n_comparator_banks,
                          bank, config.n_comparator_banks * bank),
        ]

    @property
    def total(self) -> int:
        return sum(r.total for r in self.rows)

    def fraction(self, structure: str) -> float:
        """Share of the total for one structure."""
        for row in self.rows:
            if row.structure == structure:
                return row.total / self.total
        raise KeyError(structure)

    @property
    def test_fraction(self) -> float:
        """Fraction of the CMP consumed by the TEST comparator array —
        the paper's '< 1% of the total transistor count' claim."""
        return self.fraction("Comparator bank")

    def render(self) -> str:
        """Text rendering in the shape of Table 5."""
        lines = ["%-24s %6s %10s %12s %8s" % (
            "Structure", "Count", "Each(K)", "Total(K)", "% total")]
        for row in self.rows:
            lines.append("%-24s %6d %10d %12d %7.2f%%" % (
                row.structure, row.count, row.each_k, row.total_k,
                100.0 * row.total / self.total))
        lines.append("%-24s %6s %10s %12d %7.2f%%" % (
            "Total", "", "", round(self.total / 1000), 100.0))
        return "\n".join(lines)
