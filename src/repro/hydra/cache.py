"""Set-associative cache model.

The TEST overflow analysis deliberately ignores associativity ("Not
accounting for associativity introduces some error into the overflow
analysis, but should not affect its usefulness" — Section 5.3).  The TLS
timing simulator, by contrast, models the *true* per-thread speculative
buffers, so this module provides an LRU set-associative occupancy model
used to decide real overflows — the source of the imprecision the paper
measures in Figure 11.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SimulationError


class SetAssocCache:
    """LRU set-associative cache tracking *which lines are present*.

    Only occupancy matters here (speculative read state must stay
    resident for the whole thread), so :meth:`touch` reports whether
    inserting a line would evict another resident line — i.e. whether
    speculative state would be lost.
    """

    def __init__(self, n_lines: int, assoc: int):
        if n_lines <= 0 or assoc <= 0:
            raise SimulationError("cache needs positive size/assoc")
        if n_lines % assoc:
            raise SimulationError(
                "n_lines (%d) must be a multiple of assoc (%d)"
                % (n_lines, assoc))
        self.n_lines = n_lines
        self.assoc = assoc
        self.n_sets = n_lines // assoc
        # per-set list of resident line numbers, LRU order (front = LRU)
        self._sets: Dict[int, List[int]] = {}

    def reset(self) -> None:
        """Empty the cache (start of a speculative thread)."""
        self._sets.clear()

    def touch(self, line: int) -> bool:
        """Access ``line``; returns True if this access *overflows* —
        the set is full of other resident speculative lines."""
        set_idx = line % self.n_sets
        ways = self._sets.setdefault(set_idx, [])
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return False
        if len(ways) >= self.assoc:
            return True  # would evict resident speculative state
        ways.append(line)
        return False

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(w) for w in self._sets.values())


class FullyAssocBuffer:
    """Fully associative line buffer (the speculative store buffer)."""

    def __init__(self, n_lines: int):
        if n_lines <= 0:
            raise SimulationError("buffer needs a positive size")
        self.n_lines = n_lines
        self._lines: set = set()

    def reset(self) -> None:
        """Empty the buffer (start of a speculative thread)."""
        self._lines.clear()

    def touch(self, line: int) -> bool:
        """Add ``line``; returns True if the buffer is already full with
        other lines (overflow)."""
        if line in self._lines:
            return False
        if len(self._lines) >= self.n_lines:
            return True
        self._lines.add(line)
        return False

    @property
    def resident_lines(self) -> int:
        return len(self._lines)
