"""Hydra CMP configuration: the machine model of Section 3.1.

Defaults reproduce the paper exactly:

* Table 1 — per-thread speculative buffer limits: load state 16 kB of
  L1 (512 lines x 32 B, 4-way), store buffer 2 kB (64 lines x 32 B,
  fully associative).
* Table 2 — TLS overheads: loop startup/shutdown 25 cycles each,
  end-of-iteration 5, violation-and-restart 5, store-load communication
  10 cycles.
* Section 5.3 — TEST timestamp buffers: five 2 kB store buffers,
  statically partitioned into three buffers of heap-store timestamps
  (a 192-line FIFO holding 6 kB of write history), one of cache-line
  timestamps, and one of local-variable store timestamps.
* Four single-issue cores (speedup is capped at ``n_cpus``).

All values are constructor parameters so ablation benches can sweep
them (the paper itself notes future Hydras with larger buffers would
change STL selection).
"""

from __future__ import annotations

from repro.runtime.heap import LINE_SIZE


class HydraConfig:
    """Machine parameters for Hydra with TLS + TEST support."""

    def __init__(
        self,
        n_cpus: int = 4,
        line_size: int = LINE_SIZE,
        # Table 1
        load_buffer_lines: int = 512,
        load_buffer_assoc: int = 4,
        store_buffer_lines: int = 64,
        # Table 2
        startup_overhead: int = 25,
        shutdown_overhead: int = 25,
        eoi_overhead: int = 5,
        violation_restart_overhead: int = 5,
        store_load_comm_overhead: int = 10,
        # Section 5.3 (TEST timestamp storage during profiling)
        heap_ts_fifo_lines: int = 192,
        local_ts_lines: int = 64,
        line_ts_ld_entries: int = 512,
        line_ts_st_entries: int = 64,
        # Section 5.2
        n_comparator_banks: int = 8,
    ):
        if n_cpus < 2:
            raise ValueError("a speculative CMP needs at least 2 CPUs")
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        self.n_cpus = n_cpus
        self.line_size = line_size
        self.load_buffer_lines = load_buffer_lines
        self.load_buffer_assoc = load_buffer_assoc
        self.store_buffer_lines = store_buffer_lines
        self.startup_overhead = startup_overhead
        self.shutdown_overhead = shutdown_overhead
        self.eoi_overhead = eoi_overhead
        self.violation_restart_overhead = violation_restart_overhead
        self.store_load_comm_overhead = store_load_comm_overhead
        self.heap_ts_fifo_lines = heap_ts_fifo_lines
        self.local_ts_lines = local_ts_lines
        self.line_ts_ld_entries = line_ts_ld_entries
        self.line_ts_st_entries = line_ts_st_entries
        self.n_comparator_banks = n_comparator_banks

    # -- derived -----------------------------------------------------------

    @property
    def load_buffer_bytes(self) -> int:
        """Table 1: per-thread speculative-read capacity (16 kB)."""
        return self.load_buffer_lines * self.line_size

    @property
    def store_buffer_bytes(self) -> int:
        """Table 1: per-thread store-buffer capacity (2 kB)."""
        return self.store_buffer_lines * self.line_size

    @property
    def heap_ts_history_bytes(self) -> int:
        """Section 5.3: bytes of heap write history during profiling."""
        return self.heap_ts_fifo_lines * self.line_size

    @property
    def heap_ts_fifo_entries(self) -> int:
        """Word-granularity heap store-timestamp capacity."""
        return self.heap_ts_fifo_lines * (self.line_size // 4)

    def buffer_limits_table(self):
        """Rows of Table 1 as (buffer, per-thread limit, associativity)."""
        return [
            ("Load buffer",
             "%dkB (%d lines x %dB)" % (self.load_buffer_bytes // 1024,
                                        self.load_buffer_lines,
                                        self.line_size),
             "%d-way" % self.load_buffer_assoc),
            ("Store buffer",
             "%dkB (%d lines x %dB)" % (self.store_buffer_bytes // 1024,
                                        self.store_buffer_lines,
                                        self.line_size),
             "Fully"),
        ]

    def overheads_table(self):
        """Rows of Table 2 as (operation, cycles, note)."""
        return [
            ("Loop startup", self.startup_overhead,
             "Initialize loop local variables; load register-allocated "
             "loop invariants"),
            ("Loop shutdown", self.shutdown_overhead,
             "Complete sum and min/max reductions"),
            ("Loop end-of-iteration", self.eoi_overhead,
             "Increment loop iterators"),
            ("Violation and restart", self.violation_restart_overhead,
             "Load register-allocated loop invariants"),
            ("Store-load communication", self.store_load_comm_overhead, ""),
        ]


#: The paper's exact configuration.
DEFAULT_HYDRA = HydraConfig()
