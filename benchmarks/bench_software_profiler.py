"""Section 5 claim — software-only profiling is unusably slow.

Compares the modelled slowdown of a software implementation of the
trace analyses (callbacks on every traced access) against the hardware
tracer's few percent, over a sample of workloads.  Shape target: a gap
of two orders of magnitude between the two approaches.
"""

from repro.cfg import find_candidates
from repro.jit import AnnotationLevel, annotate_program
from repro.runtime import run_program
from repro.tracer import SoftwareProfiler
from repro.workloads import get_workload

from benchmarks.conftest import banner

SAMPLE = ["Huffman", "IDEA", "NumHeapSort", "fft", "decJpeg"]


def software_slowdown(name):
    w = get_workload(name)
    program = w.compile()
    table = find_candidates(program)
    # the software baseline has no annotation optimizer: BASE level
    ann = annotate_program(program, table, AnnotationLevel.BASE)
    profiler = SoftwareProfiler()
    for lid, cand in ann.annotated_loops.items():
        profiler.register_loop_locals(lid, cand.tracked_locals)
    base = run_program(program)
    run_program(ann.program, listener=profiler)
    profiler.finish()
    return profiler.slowdown(base.cycles)


def test_software_only_profiling_slowdown(benchmark, fleet_reports):
    print(banner("Section 5 - Software-only vs hardware profiling "
                 "slowdown"))
    print("%-14s %14s %14s %8s" % (
        "Benchmark", "software", "TEST (hw)", "gap"))

    gaps = []
    for name in SAMPLE:
        sw = software_slowdown(name)
        hw = fleet_reports[name].profiling_slowdown
        gap = (sw - 1) / (hw - 1)
        gaps.append(gap)
        print("%-14s %13.1fx %13.2fx %7.0fx" % (name, sw, hw, gap))

    # the paper: >100x for software vs 3-25% for hardware.  our cost
    # model is conservative; require a >= 40x overhead gap everywhere
    # and >= 100x somewhere
    assert all(g > 40 for g in gaps), gaps
    assert max(gaps) > 100, gaps

    benchmark.pedantic(software_slowdown, args=("IDEA",), rounds=1,
                       iterations=1)
