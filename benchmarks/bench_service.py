"""Load-generator bench for the Jrpm analysis service.

Starts the daemon in-process on an ephemeral port and drives it with a
multi-threaded HTTP client, recording into ``BENCH_service.json``:

* ``cold`` — first-ever requests (distinct workloads and configs):
  every pipeline stage computes; per-request latency percentiles and
  aggregate throughput;
* ``warm`` — the identical request mix replayed against the resident
  daemon: repeats resolve from the scheduler's result cache
  (O(lookup)), so this phase measures the residency win the one-shot
  CLI forfeits on every invocation;
* ``concurrent`` — many clients issuing duplicate requests at once:
  coalescing collapses them onto single computations (server metrics
  counters are recorded as evidence);
* the server's final ``/metrics`` snapshot.

Standalone::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]

``--quick`` shrinks the request mix so CI can smoke the harness in
seconds; the committed BENCH_service.json comes from a full run.
Under pytest the quick variant runs with host-independent assertions
(warm >= 5x cold is the issue's acceptance bar).
"""

from __future__ import annotations

import json
import http.client
import os
import platform
import sys
import threading
import time
from typing import Any, Dict, List, Tuple

from repro.service.server import AnalysisService

#: request mix: (workload, body) pairs; configs vary so the cold phase
#: exercises distinct artifact-cache keys, not one hot entry
FULL_MIX = [
    ("BitOps", {}),
    ("NumHeapSort", {}),
    ("Huffman", {}),
    ("IDEA", {}),
    ("monteCarlo", {}),
    ("BitOps", {"config": {"n_cpus": 8}}),
    ("Huffman", {"config": {"n_comparator_banks": 4}}),
    ("IDEA", {"stages": ["profile"]}),
]
QUICK_MIX = FULL_MIX[:3]


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    if not latencies:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(latencies)

    def pick(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return round(ordered[index], 6)

    return {"p50": pick(0.50), "p90": pick(0.90), "p99": pick(0.99),
            "max": round(ordered[-1], 6), "count": len(ordered),
            "mean": round(sum(ordered) / len(ordered), 6)}


class Client:
    """One keep-alive HTTP connection to the daemon."""

    def __init__(self, host: str, port: int):
        self.conn = http.client.HTTPConnection(host, port, timeout=300)

    def request(self, method: str, path: str,
                body: Any = None) -> Tuple[int, Dict[str, Any]]:
        payload = json.dumps(body).encode() if body is not None else None
        self.conn.request(method, path, body=payload,
                          headers={"Content-Type": "application/json"})
        resp = self.conn.getresponse()
        data = resp.read()
        try:
            parsed = json.loads(data)
        except ValueError:
            parsed = {"raw": data.decode("utf-8", "replace")}
        return resp.status, parsed

    def close(self) -> None:
        self.conn.close()


def _drive(host: str, port: int, mix: List[Tuple[str, Dict]],
           clients: int) -> Dict[str, Any]:
    """Issue the mix concurrently from ``clients`` threads; each
    thread owns one connection and round-robins its share of the mix."""
    latencies: List[float] = []
    statuses: List[int] = []
    lock = threading.Lock()

    def worker(share: List[Tuple[str, Dict]]) -> None:
        client = Client(host, port)
        try:
            for workload, extra in share:
                body = {"workload": workload}
                body.update(extra)
                t0 = time.perf_counter()
                status, _ = client.request("POST", "/analyze", body)
                dt = time.perf_counter() - t0
                with lock:
                    latencies.append(dt)
                    statuses.append(status)
        finally:
            client.close()

    shares: List[List[Tuple[str, Dict]]] = [[] for _ in range(clients)]
    for i, item in enumerate(mix):
        shares[i % clients].append(item)
    threads = [threading.Thread(target=worker, args=(share,))
               for share in shares if share]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    return {
        "requests": len(mix),
        "clients": clients,
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(len(mix) / elapsed, 2) if elapsed else 0,
        "latency": _percentiles(latencies),
        "statuses": {str(s): statuses.count(s) for s in set(statuses)},
    }


def run_benchmark(quick: bool = False) -> Dict[str, Any]:
    mix = QUICK_MIX if quick else FULL_MIX
    duplicates = 8 if quick else 32
    service = AnalysisService(port=0, queue_depth=128, max_batch=8,
                              result_cache_size=256).start()
    try:
        host, port = service.host, service.port

        # phase 1: cold — every request computes its pipeline
        cold = _drive(host, port, mix, clients=2 if quick else 4)

        # phase 2: warm — identical mix; repeats are O(lookup)
        warm = _drive(host, port, mix, clients=2 if quick else 4)

        # phase 3: concurrent duplicates — coalescing under fan-in.
        # 'fresh' bypasses the result cache, so the burst exercises the
        # in-flight coalescing path rather than trivially cache-hitting
        coalesced_before = service.metrics.counter("coalesced")
        burst_mix = [("Huffman", {"fresh": True})] * duplicates
        concurrent = _drive(host, port, burst_mix, clients=duplicates)
        concurrent["coalesced"] = (service.metrics.counter("coalesced")
                                   - coalesced_before)

        metrics = service.metrics.to_dict()
    finally:
        service.stop()

    warm_speedup = (cold["latency"]["mean"] / warm["latency"]["mean"]
                    if warm["latency"]["mean"] else 0.0)
    return {
        "host": {"platform": platform.platform(),
                 "python": platform.python_version(),
                 "cpus": os.cpu_count()},
        "quick": quick,
        "mix": [{"workload": w, **extra} for w, extra in mix],
        "cold": cold,
        "warm": warm,
        "concurrent_duplicates": concurrent,
        "speedup": {
            "warm_vs_cold_mean": round(warm_speedup, 2),
            "warm_vs_cold_p50": round(
                cold["latency"]["p50"] / warm["latency"]["p50"], 2)
            if warm["latency"]["p50"] else None,
        },
        "server_metrics": metrics,
        "notes": (
            "cold fills the resident ArtifactCache and result cache; "
            "warm replays the identical mix against the live daemon "
            "(result-cache lookups). concurrent_duplicates uses "
            "fresh=true so fan-in exercises request coalescing, not "
            "the result cache."),
    }


def test_service_bench_quick(capsys):
    """CI smoke: the daemon serves a concurrent mix end to end, warm
    repeats clear the 5x acceptance bar, and duplicates coalesce."""
    results = run_benchmark(quick=True)
    with capsys.disabled():
        print()
        print(json.dumps({"speedup": results["speedup"],
                          "coalesced":
                          results["concurrent_duplicates"]["coalesced"]},
                         indent=2))
    assert results["cold"]["statuses"] == {"200": len(QUICK_MIX)}
    assert results["warm"]["statuses"] == {"200": len(QUICK_MIX)}
    assert results["concurrent_duplicates"]["statuses"]["200"] == 8
    # the issue's acceptance bar: a warm repeat is >= 5x its cold run
    assert results["speedup"]["warm_vs_cold_mean"] >= 5.0
    # fan-in of identical fresh requests collapsed onto few computations
    assert results["concurrent_duplicates"]["coalesced"] > 0


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    results = run_benchmark(quick=quick)
    print(json.dumps(results, indent=2))
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_service.json")
    with open(out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % out, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
