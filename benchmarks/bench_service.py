"""Load-generator bench for the Jrpm analysis service.

Starts the daemon in-process on an ephemeral port and drives it with a
multi-threaded HTTP client, recording into ``BENCH_service.json``:

* ``cold`` — first-ever requests (distinct workloads and configs):
  every pipeline stage computes; per-request latency percentiles and
  aggregate throughput;
* ``warm`` — the identical request mix replayed against the resident
  daemon: repeats resolve from the scheduler's result cache
  (O(lookup)), so this phase measures the residency win the one-shot
  CLI forfeits on every invocation;
* ``concurrent`` — many clients issuing duplicate requests at once:
  coalescing collapses them onto single computations (server metrics
  counters are recorded as evidence);
* ``load_curve`` — a shed-rate-vs-offered-load sweep against a
  dedicated daemon with an injected fixed-cost runner and a small
  bounded queue, so the curve measures the backpressure mechanics
  (p50/p90/p99 of accepted requests, 429 shed rate) rather than
  pipeline speed; the full run offers hundreds of concurrent
  connections at the top step;
* ``sharded`` — the same cold/warm replay through a 2-shard
  :class:`~repro.service.router.ShardedFrontend`, recording per-shard
  routing counts and warm result-LRU hit rates;
* the server's final ``/metrics`` snapshot.

Standalone::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]

``--quick`` shrinks the request mix so CI can smoke the harness in
seconds; the committed BENCH_service.json comes from a full run.
Under pytest the quick variant runs with host-independent assertions
(warm >= 5x cold is the issue's acceptance bar).
"""

from __future__ import annotations

import json
import http.client
import os
import platform
import sys
import threading
import time
from typing import Any, Dict, List, Tuple

from repro.jrpm.report import REPORT_SCHEMA_VERSION
from repro.service.router import ShardedFrontend
from repro.service.scheduler import RequestScheduler
from repro.service.server import AnalysisService

#: request mix: (workload, body) pairs; configs vary so the cold phase
#: exercises distinct artifact-cache keys, not one hot entry
FULL_MIX = [
    ("BitOps", {}),
    ("NumHeapSort", {}),
    ("Huffman", {}),
    ("IDEA", {}),
    ("monteCarlo", {}),
    ("BitOps", {"config": {"n_cpus": 8}}),
    ("Huffman", {"config": {"n_comparator_banks": 4}}),
    ("IDEA", {"stages": ["profile"]}),
]
QUICK_MIX = FULL_MIX[:3]


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    if not latencies:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(latencies)

    def pick(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return round(ordered[index], 6)

    return {"p50": pick(0.50), "p90": pick(0.90), "p99": pick(0.99),
            "max": round(ordered[-1], 6), "count": len(ordered),
            "mean": round(sum(ordered) / len(ordered), 6)}


class Client:
    """One keep-alive HTTP connection to the daemon."""

    def __init__(self, host: str, port: int):
        self.conn = http.client.HTTPConnection(host, port, timeout=300)

    def request(self, method: str, path: str,
                body: Any = None) -> Tuple[int, Dict[str, Any]]:
        payload = json.dumps(body).encode() if body is not None else None
        self.conn.request(method, path, body=payload,
                          headers={"Content-Type": "application/json"})
        resp = self.conn.getresponse()
        data = resp.read()
        try:
            parsed = json.loads(data)
        except ValueError:
            parsed = {"raw": data.decode("utf-8", "replace")}
        return resp.status, parsed

    def close(self) -> None:
        self.conn.close()


def _drive(host: str, port: int, mix: List[Tuple[str, Dict]],
           clients: int) -> Dict[str, Any]:
    """Issue the mix concurrently from ``clients`` threads; each
    thread owns one connection and round-robins its share of the mix."""
    latencies: List[float] = []
    statuses: List[int] = []
    lock = threading.Lock()

    def worker(share: List[Tuple[str, Dict]]) -> None:
        client = Client(host, port)
        try:
            for workload, extra in share:
                body = {"workload": workload}
                body.update(extra)
                t0 = time.perf_counter()
                status, _ = client.request("POST", "/analyze", body)
                dt = time.perf_counter() - t0
                with lock:
                    latencies.append(dt)
                    statuses.append(status)
        finally:
            client.close()

    shares: List[List[Tuple[str, Dict]]] = [[] for _ in range(clients)]
    for i, item in enumerate(mix):
        shares[i % clients].append(item)
    threads = [threading.Thread(target=worker, args=(share,))
               for share in shares if share]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    return {
        "requests": len(mix),
        "clients": clients,
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(len(mix) / elapsed, 2) if elapsed else 0,
        "latency": _percentiles(latencies),
        "statuses": {str(s): statuses.count(s) for s in set(statuses)},
    }


#: offered-concurrency steps for the shed-rate curve; the full sweep
#: tops out at hundreds of concurrent connections
LOAD_STEPS_FULL = [8, 32, 64, 128, 256]
LOAD_STEPS_QUICK = [4, 16, 32]

#: fixed per-request cost of the injected load-curve runner
LOAD_RUNNER_COST_S = 0.01


def _fake_report(name: str) -> Dict[str, Any]:
    """Minimal dict satisfying REPORT_SCHEMA, for the injected
    load-curve runner (the handler validates every 200 response)."""
    return {"schema_version": REPORT_SCHEMA_VERSION, "name": name,
            "sequential_cycles": 1, "profiled_cycles": 1,
            "profiling_slowdown": 1.0, "loops_profiled": 0,
            "coverage": 0.0, "predicted_speedup": 1.0,
            "actual_speedup": None,
            "selection": {"total_cycles": 1, "serial_cycles": 1,
                          "selected": []},
            "predicted_vs_actual": None, "engine": None,
            "trace_jit": None, "optimize_stats": None,
            "models": None}


def _load_body(i: int) -> Dict[str, Any]:
    """The i-th load-curve request: keys vary so the sweep saturates
    the queue instead of collapsing onto one coalesced computation."""
    names = ["BitOps", "Huffman", "IDEA", "NumHeapSort", "monteCarlo"]
    return {"workload": names[i % len(names)],
            "config": {"n_cpus": 2 + (i % 8)},
            "extended": bool((i // 8) % 2),
            "fresh": True}


def _offer(host: str, port: int, offered: int,
           per_client: int) -> Dict[str, Any]:
    """``offered`` concurrent keep-alive connections, each issuing
    ``per_client`` requests back to back; accepted (200) latencies and
    shed (429) counts feed one point of the load curve."""
    ok_latencies: List[float] = []
    statuses: List[int] = []
    lock = threading.Lock()

    def worker(base: int) -> None:
        client = Client(host, port)
        try:
            for j in range(per_client):
                body = _load_body(base * per_client + j)
                t0 = time.perf_counter()
                status, _ = client.request("POST", "/analyze", body)
                dt = time.perf_counter() - t0
                with lock:
                    statuses.append(status)
                    if status == 200:
                        ok_latencies.append(dt)
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(base,))
               for base in range(offered)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    completed = statuses.count(200)
    shed = statuses.count(429)
    return {
        "offered_connections": offered,
        "requests": len(statuses),
        "completed": completed,
        "shed": shed,
        "shed_rate": round(shed / len(statuses), 4) if statuses else 0.0,
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(completed / elapsed, 2) if elapsed else 0,
        "latency": _percentiles(ok_latencies),
        "statuses": {str(s): statuses.count(s) for s in set(statuses)},
    }


def run_load_curve(quick: bool = False) -> Dict[str, Any]:
    """Shed-rate-vs-offered-load sweep against a dedicated daemon.

    The runner is injected with a fixed ~10ms cost and batching is
    off, so capacity is a known constant (~100 accepted rps) and the
    curve isolates the bounded queue's behaviour: low offered load
    rides under ``queue_depth`` and sheds nothing, while each larger
    step sheds a growing fraction as 429 + Retry-After."""
    queue_depth = 16

    def runner(requests):
        time.sleep(LOAD_RUNNER_COST_S)
        return [{"status": "ok", "workload": r.workload.name,
                 "report": _fake_report(r.workload.name), "attempts": 1}
                for r in requests]

    scheduler = RequestScheduler(runner=runner, jobs=1, max_batch=1,
                                 queue_depth=queue_depth,
                                 result_cache_size=0)
    service = AnalysisService(port=0, scheduler=scheduler).start()
    steps = LOAD_STEPS_QUICK if quick else LOAD_STEPS_FULL
    per_client = 4 if quick else 8
    curve = []
    try:
        for offered in steps:
            curve.append(_offer(service.host, service.port, offered,
                                per_client))
    finally:
        service.stop()
    return {
        "queue_depth": queue_depth,
        "runner_cost_s": LOAD_RUNNER_COST_S,
        "per_client_requests": per_client,
        "curve": curve,
    }


def run_sharded_phase(quick: bool = False) -> Dict[str, Any]:
    """Cold/warm replay through a 2-shard frontend: consistent
    hashing pins each key to one shard, so the warm pass hits that
    shard's result LRU and the per-shard hit rates stay high."""
    mix = QUICK_MIX if quick else FULL_MIX
    frontend = ShardedFrontend(port=0, shards=2, replicas=2).start()
    try:
        cold = _drive(frontend.host, frontend.port, mix,
                      clients=2 if quick else 4)
        warm = _drive(frontend.host, frontend.port, mix,
                      clients=2 if quick else 4)
        snapshot = frontend.metrics_snapshot()
    finally:
        frontend.stop()
    shards = {}
    for shard_id, snap in snapshot["shards"].items():
        counters = snap.get("counters", {})
        served = snap.get("requests", {}).get("analyze_200", 0)
        hits = counters.get("result_cache_hits", 0)
        shards[shard_id] = {
            "analyze_200": served,
            "analyze_completed": counters.get("analyze_completed", 0),
            "result_cache_hits": hits,
            "warm_hit_rate": round(hits / served, 4) if served else None,
        }
    return {
        "shards": 2,
        "replicas": 2,
        "cold": cold,
        "warm": warm,
        "per_shard": shards,
        "frontend_routing": {
            name: value
            for name, value in snapshot["frontend"]["counters"].items()
            if name.startswith("routed_shard_")},
        "aggregate_counters": snapshot["aggregate"]["counters"],
    }


def run_benchmark(quick: bool = False) -> Dict[str, Any]:
    mix = QUICK_MIX if quick else FULL_MIX
    duplicates = 8 if quick else 32
    service = AnalysisService(port=0, queue_depth=128, max_batch=8,
                              result_cache_size=256).start()
    try:
        host, port = service.host, service.port

        # phase 1: cold — every request computes its pipeline
        cold = _drive(host, port, mix, clients=2 if quick else 4)

        # phase 2: warm — identical mix; repeats are O(lookup)
        warm = _drive(host, port, mix, clients=2 if quick else 4)

        # phase 3: concurrent duplicates — coalescing under fan-in.
        # 'fresh' bypasses the result cache, so the burst exercises the
        # in-flight coalescing path rather than trivially cache-hitting
        coalesced_before = service.metrics.counter("coalesced")
        burst_mix = [("Huffman", {"fresh": True})] * duplicates
        concurrent = _drive(host, port, burst_mix, clients=duplicates)
        concurrent["coalesced"] = (service.metrics.counter("coalesced")
                                   - coalesced_before)

        metrics = service.metrics.to_dict()
    finally:
        service.stop()

    # phase 4: shed-rate-vs-offered-load curve (dedicated daemon with
    # an injected fixed-cost runner; see run_load_curve)
    load_curve = run_load_curve(quick=quick)

    # phase 5: the same cold/warm replay through a 2-shard frontend
    sharded = run_sharded_phase(quick=quick)

    warm_speedup = (cold["latency"]["mean"] / warm["latency"]["mean"]
                    if warm["latency"]["mean"] else 0.0)
    return {
        "host": {"platform": platform.platform(),
                 "python": platform.python_version(),
                 "cpus": os.cpu_count()},
        "quick": quick,
        "mix": [{"workload": w, **extra} for w, extra in mix],
        "cold": cold,
        "warm": warm,
        "concurrent_duplicates": concurrent,
        "load_curve": load_curve,
        "sharded": sharded,
        "speedup": {
            "warm_vs_cold_mean": round(warm_speedup, 2),
            "warm_vs_cold_p50": round(
                cold["latency"]["p50"] / warm["latency"]["p50"], 2)
            if warm["latency"]["p50"] else None,
        },
        "server_metrics": metrics,
        "notes": (
            "cold fills the resident ArtifactCache and result cache; "
            "warm replays the identical mix against the live daemon "
            "(result-cache lookups). concurrent_duplicates uses "
            "fresh=true so fan-in exercises request coalescing, not "
            "the result cache. load_curve sweeps offered concurrency "
            "against a fixed-capacity daemon (injected ~10ms runner, "
            "queue_depth=16) to chart the 429 shed rate. sharded "
            "replays the mix through a 2-shard consistent-hash "
            "frontend and records per-shard warm hit rates."),
    }


def test_service_bench_quick(capsys):
    """CI smoke: the daemon serves a concurrent mix end to end, warm
    repeats clear the 5x acceptance bar, and duplicates coalesce."""
    results = run_benchmark(quick=True)
    with capsys.disabled():
        print()
        print(json.dumps({"speedup": results["speedup"],
                          "coalesced":
                          results["concurrent_duplicates"]["coalesced"]},
                         indent=2))
    assert results["cold"]["statuses"] == {"200": len(QUICK_MIX)}
    assert results["warm"]["statuses"] == {"200": len(QUICK_MIX)}
    assert results["concurrent_duplicates"]["statuses"]["200"] == 8
    # the issue's acceptance bar: a warm repeat is >= 5x its cold run
    assert results["speedup"]["warm_vs_cold_mean"] >= 5.0
    # fan-in of identical fresh requests collapsed onto few computations
    assert results["concurrent_duplicates"]["coalesced"] > 0

    # the backpressure curve: the lightest step rides under the queue
    # and sheds nothing; the heaviest saturates it and sheds
    curve = results["load_curve"]["curve"]
    assert [point["offered_connections"] for point in curve] \
        == LOAD_STEPS_QUICK
    assert all(point["completed"] > 0 for point in curve)
    assert curve[0]["shed_rate"] == 0.0
    assert curve[-1]["shed"] > 0
    assert curve[0]["shed_rate"] <= curve[-1]["shed_rate"]

    # the sharded replay: every request lands (no 5xx), and the warm
    # pass resolves from the shards' result LRUs
    sharded = results["sharded"]
    assert sharded["cold"]["statuses"] == {"200": len(QUICK_MIX)}
    assert sharded["warm"]["statuses"] == {"200": len(QUICK_MIX)}
    assert sharded["aggregate_counters"].get("result_cache_hits", 0) \
        >= len(QUICK_MIX)
    assert sum(sharded["frontend_routing"].values()) \
        == 2 * len(QUICK_MIX)


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    results = run_benchmark(quick=quick)
    print(json.dumps(results, indent=2))
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_service.json")
    with open(out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % out, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
