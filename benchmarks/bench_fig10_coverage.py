"""Figure 10 — selected STLs, their coverage, and predicted execution
time per benchmark.

Each printed row is one of the figure's two columns: the sequential
decomposition of the run into selected STLs plus the serial remainder,
and the same blocks scaled by the predicted STL speedups.  Shape
targets: near-total coverage for the numeric kernels; visible serial
remainders for compress-style programs; predicted bars strictly below
1.0 when anything was selected.
"""

from repro.workloads import all_workloads

from benchmarks.conftest import banner


def test_fig10_selected_stl_coverage(benchmark, fleet_reports):
    print(banner("Figure 10 - Selected STLs: coverage and predicted "
                 "normalized time"))
    print("%-14s %5s %9s %9s %10s   %s" % (
        "Benchmark", "STLs", "coverage", "serial", "predicted",
        "top STL blocks (share@speedup)"))

    for w in all_workloads():
        rep = fleet_reports[w.name]
        sel = rep.selection
        blocks = []
        for s in sel.significant()[:3]:
            share = s.sequential_cycles / sel.total_cycles
            blocks.append("%2.0f%%@%.1fx" % (100 * share,
                                             s.estimate.speedup))
        print("%-14s %5d %8.1f%% %8.1f%% %10.3f   %s" % (
            w.name, len(sel.selected), 100 * sel.coverage,
            100 * (1 - sel.coverage),
            1.0 / sel.predicted_speedup,
            " ".join(blocks)))

    reports = fleet_reports

    # coverage is a fraction, and selections exist everywhere
    for name, rep in reports.items():
        assert 0.0 < rep.coverage <= 1.0, name
        assert rep.selection.selected, name
        # Figure 10: predicted bars never exceed sequential
        assert rep.selection.predicted_speedup >= 1.0, name

    # compress keeps a large serial remainder (its dictionary loop
    # carries the prefix chain), like the paper's db/jess/jLex/mp3 group
    assert reports["compress"].coverage < 0.5

    # the numeric kernels cover nearly everything
    for name in ("IDEA", "FourierTest", "shallow", "raytrace"):
        assert reports[name].coverage > 0.9, name

    # several programs have many STLs contributing (Assignment-like)
    many = [n for n, r in reports.items()
            if len(r.selection.significant()) >= 4]
    assert len(many) >= 5

    # time the coverage computation over one report
    rep = reports["NeuralNet"]
    benchmark(lambda: rep.selection.coverage)
