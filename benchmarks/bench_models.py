"""Figure 11-style comparison across execution models.

Every workload runs the full pipeline with all registered speculation
models competing per loop (``models="all"``): the selector's
generalized Eq. 2 argmax picks a backend per loop, and the TLS stage
replays each selected loop under its winning model.  The table shows,
per workload, the whole-program predicted and simulated speedup, how
many selected loops each model won, and the per-loop winner with every
competing estimate — the multi-model analogue of Figure 11's
predicted-vs-actual bars.

A second pass replays the known post/wait-friendly workload (BitOps:
one hot loop whose local stride recurrences the live-in predictor
covers while TLS burns restarts on the same arcs) through the legacy
hydra-tls-only pipeline.  The headline gate — DOACROSS must actually
beat TLS where the estimator says it does — compares the two simulated
speedups, not the estimates.

Standalone::

    PYTHONPATH=src python benchmarks/bench_models.py [--quick]

``--quick`` shrinks the fleet to three workloads so CI can smoke-test
the harness in seconds; the committed BENCH_models.json comes from a
full run.  Under pytest the quick variant runs with the gate asserted.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List

from repro.jrpm import Jrpm
from repro.models import model_names
from repro.workloads import all_workloads, get_workload

from benchmarks.conftest import banner

#: the documented post/wait-friendly workload: DOACROSS + live-in
#: prediction must beat speculate-and-restart TLS here (see
#: EXPERIMENTS.md); the gate compares simulated actuals, not estimates
GATE_WORKLOAD = "BitOps"

#: quick-mode fleet: the gate workload plus two mixed workloads where
#: the argmax splits loops between hydra-tls and doacross
QUICK_WORKLOADS = ("BitOps", "Huffman", "compress")


def _run_models(name: str):
    w = get_workload(name)
    return Jrpm(source=w.source(), name=w.name,
                models="all").run(simulate_tls=True)


def _run_legacy(name: str):
    w = get_workload(name)
    return Jrpm(source=w.source(), name=w.name).run(simulate_tls=True)


def _workload_row(report) -> Dict:
    sel = report.selection
    selected_ids = {s.loop_id for s in sel.selected}
    counts: Dict[str, int] = {}
    per_loop: List[Dict] = []
    for loop_id in sorted(sel.decisions):
        dec = sel.decisions[loop_id]
        winner = getattr(dec, "model", "hydra-tls")
        chosen = loop_id in selected_ids
        if chosen:
            counts[winner] = counts.get(winner, 0) + 1
        row = {
            "loop": loop_id,
            "winner": winner,
            "selected": chosen,
            "estimates": {
                n: round(est.speedup, 4)
                for n, est in (dec.model_estimates or {}).items()},
        }
        result = report.tls_results.get(loop_id)
        if result is not None:
            row["actual_speedup"] = round(result.speedup, 4)
        per_loop.append(row)
    return {
        "predicted_speedup": round(report.predicted_speedup, 4),
        "actual_speedup": round(report.actual_speedup, 4),
        "selected_counts": counts,
        "per_loop": per_loop,
    }


def run_benchmark(quick: bool = False) -> Dict:
    names = list(QUICK_WORKLOADS) if quick \
        else [w.name for w in all_workloads()]
    competing = model_names()

    workloads: Dict[str, Dict] = {}
    elapsed = 0.0
    for name in names:
        start = time.perf_counter()
        report = _run_models(name)
        elapsed += time.perf_counter() - start
        assert report.models == tuple(competing), report.models
        workloads[name] = _workload_row(report)

    # the gate: same workload, same trace discipline, hydra-tls-only
    legacy = _run_legacy(GATE_WORKLOAD)
    gate_row = workloads[GATE_WORKLOAD] if GATE_WORKLOAD in workloads \
        else _workload_row(_run_models(GATE_WORKLOAD))
    gate = {
        "workload": GATE_WORKLOAD,
        "models_actual_speedup": gate_row["actual_speedup"],
        "legacy_hydra_actual_speedup": round(legacy.actual_speedup, 4),
        "doacross_selected": gate_row["selected_counts"]
        .get("doacross", 0),
        "doacross_beats_hydra":
            gate_row["actual_speedup"] > legacy.actual_speedup,
    }

    totals: Dict[str, int] = {}
    for row in workloads.values():
        for model, count in row["selected_counts"].items():
            totals[model] = totals.get(model, 0) + count

    return {
        "benchmark": "execution-model comparison (multi-model Fig 11)",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "quick": quick,
        "models": list(competing),
        "fleet_seconds": round(elapsed, 3),
        "selected_totals": totals,
        "doacross_gate": gate,
        "workloads": workloads,
        "notes": (
            "each workload runs the pipeline with models='all': the "
            "selector argmaxes every registered model's estimate per "
            "loop and the TLS stage replays each selected loop under "
            "its winning backend. doacross_gate re-runs the gate "
            "workload through the legacy hydra-tls-only pipeline and "
            "compares simulated (not estimated) whole-program "
            "speedups."),
    }


def render(results: Dict) -> str:
    lines = [banner("Execution models - per-workload winners "
                    "(models=%s)" % ",".join(results["models"]))]
    lines.append("%-14s %10s %10s  %s" % (
        "Benchmark", "predicted", "actual", "selected loops by model"))
    for name in sorted(results["workloads"]):
        row = results["workloads"][name]
        counts = ", ".join(
            "%s=%d" % (m, c)
            for m, c in sorted(row["selected_counts"].items())) or "-"
        lines.append("%-14s %10.3f %10.3f  %s" % (
            name, row["predicted_speedup"], row["actual_speedup"],
            counts))
    gate = results["doacross_gate"]
    lines.append("")
    lines.append(
        "gate: %s models=%0.3fx legacy-hydra=%0.3fx doacross %s"
        % (gate["workload"], gate["models_actual_speedup"],
           gate["legacy_hydra_actual_speedup"],
           "wins" if gate["doacross_beats_hydra"] else "LOSES"))
    return "\n".join(lines)


def _assert_gate(results: Dict) -> None:
    gate = results["doacross_gate"]
    # ISSUE acceptance: at least one workload picks DOACROSS over
    # hydra-tls, and the pick pays off in simulated cycles
    assert gate["doacross_selected"] >= 1, gate
    assert gate["doacross_beats_hydra"], gate
    assert results["selected_totals"].get("doacross", 0) >= 1, \
        results["selected_totals"]
    # sequential never wins a *selected* loop: Eq. 2 only selects
    # loops whose winning estimate clears min_speedup
    assert results["selected_totals"].get("sequential", 0) == 0, \
        results["selected_totals"]
    for name, row in results["workloads"].items():
        assert row["actual_speedup"] > 0.5, (name, row)
        for loop in row["per_loop"]:
            if not loop["selected"]:
                continue
            ests = loop["estimates"]
            assert ests, (name, loop)
            # the recorded winner really is the argmax of the table
            best = max(ests.values())
            assert abs(ests[loop["winner"]] - best) < 1e-9, (name, loop)


def test_models_bench_quick(capsys):
    """CI smoke: multi-model selection runs end to end and DOACROSS
    beats hydra-tls on the known post/wait-friendly workload."""
    results = run_benchmark(quick=True)
    with capsys.disabled():
        print()
        print(render(results))
    _assert_gate(results)
    # the argmax is a real contest, not a doacross sweep: hydra-tls
    # still wins loops in the quick fleet
    assert results["selected_totals"].get("hydra-tls", 0) >= 1, \
        results["selected_totals"]


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    results = run_benchmark(quick=quick)
    print(render(results))
    _assert_gate(results)
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_models.json")
    with open(out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % out, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
