"""Table 5 — transistor-count estimates for Hydra with TLS + TEST.

The headline reproduction target: the TEST comparator-bank array adds
less than 1% of the CMP's transistors.
"""

from repro.hydra import TransistorBudget

from benchmarks.conftest import banner


def test_table5_transistor_estimates(benchmark):
    budget = benchmark(TransistorBudget)

    print(banner("Table 5 - Transistor count estimates"))
    print(budget.render())
    print("\nTEST comparator array share: %.2f%% (paper: < 1%%)"
          % (100 * budget.test_fraction))

    assert budget.test_fraction < 0.01
    assert budget.fraction("2MB L2 cache") > 0.5
    # write buffers similarly stay below 1%
    assert budget.fraction("Write buffer") < 0.01
