"""Figure 9 — the imprecision example: ``A[i] = A[i-1]`` except every
nth iteration.

Prints, for several n, what TEST concludes (arc frequency and estimated
speedup): the analysis cannot distinguish break densities because the
two-bin accumulation hides multi-iteration parallelism.
"""

from repro.jrpm import Jrpm
from repro.tracer import estimate_speedup

from benchmarks.conftest import banner

SOURCE = """
func main() {
  var a = array(512);
  a[0] = 7;
  for (var i = 1; i < 512; i = i + 1) {
    if (i %% %d != 0) {
      a[i] = a[i - 1];
    } else {
      a[i] = i;
    }
  }
  var s = 0;
  for (var k = 0; k < 512; k = k + 1) { s = s + a[k]; }
  return s;
}
"""


def copy_loop_stats(n):
    rep = Jrpm(source=SOURCE % n, name="fig9-n%d" % n).run(
        simulate_tls=False)
    stats = [st for st in rep.device.stats.values() if st.arcs_prev > 0]
    return max(stats, key=lambda s: s.arcs_prev)


def test_fig9_imprecision(benchmark):
    print(banner("Figure 9 - A[i]=A[i-1] except every nth iteration"))
    print("%-6s %14s %14s %16s" % (
        "n", "arc freq(t-1)", "arc len(t-1)", "TEST estimate"))

    estimates = {}
    for n in (2, 4, 8, 16):
        st = copy_loop_stats(n)
        est = estimate_speedup(st)
        estimates[n] = est.speedup
        print("%-6d %14.3f %14.1f %15.2fx" % (
            n, st.arc_freq_prev, st.avg_arc_len_prev, est.speedup))

    # the paper's point: true multi-iteration parallelism grows 8x from
    # n=2 to n=16, but TEST's verdict barely moves
    spread = max(estimates.values()) - min(estimates.values())
    assert spread < 0.6 * min(estimates.values()), estimates

    # and the dependency count stays high for all n
    for n in (2, 4, 8, 16):
        assert copy_loop_stats(n).arc_freq_prev >= 0.5

    benchmark.pedantic(copy_loop_stats, args=(8,), rounds=1,
                       iterations=1)
