"""Synthetic-corpus error atlas: per-family estimator error vs the
TLS simulator, with known-parallelism labels as the gate.

Every registered synthetic instance (5 families x 20 seeded instances)
runs the pipeline twice — legacy hydra-tls and multi-model argmax —
and the atlas aggregates, per family, the workload-level prediction
error, the per-model STL error, and whether each instance's
parallelism label held up in simulation (parallel families must speed
up, the serial family must not).

The headline result is the **bound breaker**: the chase family's
heap-carried pointer chase misspeculates every iteration while
Equation 1 models the chain as an arc-separation delay, so its
measured error (max 74.7%) blows straight through the 40% fallback
bound the conformance oracle applies to unmeasured programs — the
same mechanism as the documented BitOps outlier, now available as 20
parameterized instances.  EXPERIMENTS.md carries the measured table;
:data:`repro.synth.atlas.FAMILY_ERROR_BOUNDS` pins the ceilings this
gate enforces.

Standalone::

    PYTHONPATH=src python benchmarks/bench_synth.py [--quick]

``--quick`` runs 2 instances per family so CI can smoke-test the
harness in seconds; the committed BENCH_synth.json comes from a full
run.  Under pytest the quick variant runs with the gate asserted.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List

from repro.conformance.oracle import DEFAULT_ERROR_BOUND
from repro.synth.atlas import FAMILY_ERROR_BOUNDS, build_atlas
from repro.synth.oracle import (
    PARALLEL_MIN_SPEEDUP,
    SERIAL_MAX_SPEEDUP,
)
from repro.workloads.registry import SYNTHETIC, by_category

from benchmarks.conftest import banner

#: quick-mode instances per family (full mode takes every registered
#: instance)
QUICK_PER_FAMILY = 2

#: the family built to exceed the fallback bound; the gate asserts the
#: atlas actually flags it
EXPECTED_BREAKER = "chase"


def _corpus(quick: bool) -> List:
    instances = by_category(SYNTHETIC)
    if not quick:
        return instances
    taken: Dict[str, int] = {}
    subset = []
    for w in instances:
        family = w.label.family
        if taken.get(family, 0) < QUICK_PER_FAMILY:
            taken[family] = taken.get(family, 0) + 1
            subset.append(w)
    return subset


def run_benchmark(quick: bool = False) -> Dict:
    instances = _corpus(quick)
    start = time.perf_counter()
    atlas = build_atlas(instances=instances)
    elapsed = time.perf_counter() - start

    families = [stats.to_dict() for stats in atlas.all_family_stats()]
    labels_total = sum(f["count"] for f in families)
    labels_ok = sum(f["labels_satisfied"] for f in families)

    return {
        "benchmark": "synthetic workload error atlas",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "quick": quick,
        "instances": len(instances),
        "fleet_seconds": round(elapsed, 3),
        "fallback_bound": DEFAULT_ERROR_BOUND,
        "family_bounds": dict(FAMILY_ERROR_BOUNDS),
        "label_thresholds": {
            "parallel_min_speedup": PARALLEL_MIN_SPEEDUP,
            "serial_max_speedup": SERIAL_MAX_SPEEDUP,
        },
        "families": families,
        "breakers": atlas.breakers(),
        "labels_satisfied": labels_ok,
        "labels_total": labels_total,
        "violations": atlas.violations(),
        "atlas": atlas.to_dict() if not quick else None,
        "notes": (
            "each instance runs the pipeline twice (legacy hydra-tls "
            "and models='all' argmax); families aggregate the "
            "workload-level |pred-act|/act error, the per-model STL "
            "error, and the label-oracle outcome. 'breakers' names "
            "families with instances over the %.0f%% fallback bound "
            "the conformance oracle applies to unmeasured programs."
            % (100 * DEFAULT_ERROR_BOUND)),
    }


def render(results: Dict) -> str:
    lines = [banner("Synthetic error atlas - %d instances, "
                    "%d families" % (results["instances"],
                                     len(results["families"])))]
    lines.append("%-10s %-9s %5s %7s %7s %7s %7s %7s" % (
        "family", "class", "n", "mean%", "max%", "bound%", ">fall",
        "labels"))
    for row in results["families"]:
        lines.append("%-10s %-9s %5d %6.1f%% %6.1f%% %6.1f%% %7d %4d/%d"
                     % (row["family"], row["expected_class"],
                        row["count"], 100 * row["mean_error"],
                        100 * row["max_error"], 100 * row["bound"],
                        row["over_fallback"], row["labels_satisfied"],
                        row["count"]))
    lines.append("")
    lines.append("labels: %d/%d satisfied (parallel >= %.2fx, "
                 "serial <= %.2fx)"
                 % (results["labels_satisfied"],
                    results["labels_total"],
                    results["label_thresholds"]["parallel_min_speedup"],
                    results["label_thresholds"]["serial_max_speedup"]))
    lines.append("bound breakers vs the %.0f%% fallback: %s"
                 % (100 * results["fallback_bound"],
                    ", ".join(results["breakers"]) or "none"))
    return "\n".join(lines)


def _assert_gate(results: Dict) -> None:
    # every instance's label held in simulation, and no measured
    # error escaped its family's calibrated ceiling
    assert results["violations"] == [], results["violations"]
    assert results["labels_satisfied"] == results["labels_total"], \
        (results["labels_satisfied"], results["labels_total"])
    # the corpus covers all five families
    assert len(results["families"]) >= 5, results["families"]
    # the atlas names the family built to break the fallback bound
    assert EXPECTED_BREAKER in results["breakers"], results["breakers"]
    by_name = {f["family"]: f for f in results["families"]}
    chase = by_name[EXPECTED_BREAKER]
    assert chase["max_error"] > results["fallback_bound"], chase
    assert chase["expected_class"] == "serial", chase
    # every family stays inside its measured bound (the calibrated
    # analogue of WORKLOAD_ERROR_BOUNDS)
    for row in results["families"]:
        assert row["max_error"] <= row["bound"], row


def test_synth_bench_quick(capsys):
    """CI smoke: the atlas harness runs end to end on a per-family
    subset, every label holds, and chase still breaks the fallback."""
    results = run_benchmark(quick=True)
    with capsys.disabled():
        print()
        print(render(results))
    _assert_gate(results)


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    results = run_benchmark(quick=quick)
    print(render(results))
    _assert_gate(results)
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_synth.json")
    with open(out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % out, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
