"""Wall-clock benchmark for the execution-engine work: interpreter
fast path, pipeline artifact caching, and the parallel fleet executor.

Three modes are timed and written to ``BENCH_pipeline.json``:

* ``single_run`` — the full Huffman pipeline (compile through TLS
  replay), exercising the dispatch-table interpreter in both its
  no-listener (sequential baseline) and traced (profiled run) loops;
* ``cached_sweep`` — a 3-configuration comparator-bank sweep run cold
  (filling an :class:`~repro.jrpm.cache.ArtifactCache`) and then warm
  against the filled cache, where every stage hits;
* ``parallel_fleet`` — a multi-workload fleet, serial vs. ``jobs=4``
  worker processes (the win scales with host cores; on a single-core
  host the pool only adds overhead, and the JSON records that
  honestly);
* ``analysis_sweep`` — the Figure 11 predicted-vs-actual replay under
  a 6-configuration Hydra sweep over one recorded trace: the legacy
  row-of-tuples path (per-call window rebuild, no kernel reuse) vs.
  the columnar :class:`~repro.tls.engine.TraceEngine`, both measured
  in-run so the comparison is host-fair.  The engine's per-phase
  seconds and kernel hit/miss counters are recorded alongside, as are
  trace-JIT on/off rows for the traced recording run that feeds it;
* ``trace_jit`` — the full Huffman pipeline with the trace JIT on vs.
  off, interleaved best-of-N on the same host, plus the trace-cache
  counters (recordings, aborts, linked/blacklisted traces, invocation
  and guard-failure totals) of the JIT-on run;
* ``optimize`` — the full Huffman pipeline with the LVN/LICM/DCE pass
  pipeline on vs. off (trace JIT on for both: the flags compose),
  interleaved best-of-N, plus the Figure 11 recording run where the
  host-independent win lives: LICM hoists the decode loop's invariant
  bound re-evaluation, so the tracer commits measurably fewer
  interpreter events for the identical execution.

Standalone::

    PYTHONPATH=src python benchmarks/bench_perf_pipeline.py [--quick]

``--quick`` shrinks the fleet so CI can smoke-test the harness in
seconds; the committed BENCH_pipeline.json comes from a full run.
Under pytest the quick variant runs with loose sanity assertions.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List

from repro.cfg.candidates import find_candidates
from repro.errors import SimulationError
from repro.hydra import HydraConfig
from repro.jit.annotate import AnnotationLevel, annotate_program
from repro.jit.speculative import compile_stl
from repro.jrpm import ArtifactCache, Jrpm, run_fleet
from repro.lang.codegen import compile_source
from repro.runtime.events import (
    ColumnarRecording,
    MulticastListener,
    RecordingListener,
)
from repro.runtime.interpreter import run_program
from repro.tls import TraceEngine, simulate_stl, split_trace
from repro.workloads import all_workloads, get_workload

#: pre-change numbers, measured on the same single-CPU container with
#: the if/elif interpreter, no cache, and the serial-only run_fleet
#: (commit 5621cd4); regenerate when re-baselining on new hardware
BASELINE = {
    "single_run_s": 1.207,
    "cached_sweep_s": 2.723,
    "parallel_fleet_s": 29.493,
}

SWEEP_BANKS = (2, 4, 8)

#: Hydra points for the Figure 11 analysis sweep: CPU count x store
#: buffer size, the knobs a capacity-planning sweep actually turns
ANALYSIS_SWEEP = tuple(
    HydraConfig(n_cpus=n, store_buffer_lines=sb)
    for n in (2, 4, 8) for sb in (16, 64))


def _time_single_run() -> float:
    w = get_workload("Huffman")
    start = time.perf_counter()
    Jrpm(source=w.source(), name=w.name).run(simulate_tls=True)
    return time.perf_counter() - start


def _time_trace_jit_single(reps: int) -> Dict:
    """Full Huffman pipeline with the trace JIT on vs. off.

    The pairs are interleaved and the minimum of each side is kept, so
    host noise hits both flags evenly; the JIT-on run's trace-cache
    counters ride along for the committed JSON.
    """
    w = get_workload("Huffman")
    src = w.source()

    def one(flag):
        start = time.perf_counter()
        report = Jrpm(source=src, name=w.name,
                      trace_jit=flag).run(simulate_tls=True)
        return time.perf_counter() - start, report

    one(True)  # warm the process so rep 1 is comparable to rep N
    one(False)
    ons: List[float] = []
    offs: List[float] = []
    report_on = None
    for _ in range(reps):
        off_s, _report = one(False)
        on_s, report_on = one(True)
        offs.append(off_s)
        ons.append(on_s)

    def counters(result):
        # per-trace tables are RunResult-level observability; the
        # committed benchmark keeps the per-run counters only
        return {k: v for k, v in result.jit.items() if k != "traces"}

    return {
        "reps": reps,
        "on_s": round(min(ons), 3),
        "off_s": round(min(offs), 3),
        "speedup": round(min(offs) / min(ons), 2),
        "jit": {
            "sequential": counters(report_on.sequential),
            "profiled": counters(report_on.profiled),
        },
    }


def _time_optimize_single(reps: int) -> Dict:
    """Full Huffman pipeline, optimizer on vs. off, trace JIT on for
    both sides.

    Cold runs pay the pass pipeline inside the timed region (a
    compile-once cost, recorded honestly as ``cold_*``).  The
    regression gate compares *warm* runs against per-flag artifact
    caches — compilation (including optimization) hits the cache and
    the pair isolates the execution/analysis side, which the optimized
    program may never make slower.  Interleaved min-of-N as usual; the
    sequential cycle counts ride along as the host-independent check."""
    w = get_workload("Huffman")
    src = w.source()
    caches = {False: ArtifactCache(), True: ArtifactCache()}

    def one(flag, cache=None):
        start = time.perf_counter()
        report = Jrpm(source=src, name=w.name, trace_jit=True,
                      optimize=flag, cache=cache).run(simulate_tls=True)
        return time.perf_counter() - start, report

    cold_on_s, report_on = one(True)
    cold_off_s, report_off = one(False)
    one(True, caches[True])  # fill the per-flag caches
    one(False, caches[False])
    ons: List[float] = []
    offs: List[float] = []
    for _ in range(reps):
        offs.append(one(False, caches[False])[0])
        ons.append(one(True, caches[True])[0])

    return {
        "reps": reps,
        "cold_off_s": round(cold_off_s, 3),
        "cold_on_s": round(cold_on_s, 3),
        "warm_off_s": round(min(offs), 3),
        "warm_on_s": round(min(ons), 3),
        "speedup": round(min(offs) / min(ons), 2),
        "sequential_cycles_off": report_off.sequential.cycles,
        "sequential_cycles_on": report_on.sequential.cycles,
        "stats": report_on.optimize_stats,
    }


def _time_optimize_recording() -> Dict:
    """The Figure 11 recording run (annotated Huffman, trace JIT on)
    with the optimizer off vs. on.

    The optimizer runs strictly before annotation, so fewer surviving
    instructions mean fewer tracked-local loads instrumented and fewer
    events committed — a deterministic count, unlike wall clock."""
    from repro.jit import optimize_program

    w = get_workload("Huffman")

    def record(optimize):
        program = compile_source(w.source())
        stats = optimize_program(program).to_dict() if optimize else None
        candidates = find_candidates(program)
        annotated = annotate_program(
            program, candidates, AnnotationLevel.OPTIMIZED)
        rec = ColumnarRecording()
        start = time.perf_counter()
        run_program(annotated.program, listener=rec, trace_jit=True)
        return time.perf_counter() - start, len(rec), stats

    off_s, events_off, _ = record(False)
    on_s, events_on, stats = record(True)
    return {
        "off_s": round(off_s, 3),
        "on_s": round(on_s, 3),
        "events_off": events_off,
        "events_on": events_on,
        "events_removed": events_off - events_on,
        "stats": stats,
    }


def _time_sweep(cache) -> float:
    w = get_workload("Huffman")
    start = time.perf_counter()
    for banks in SWEEP_BANKS:
        Jrpm(source=w.source(), name=w.name,
             config=HydraConfig(n_comparator_banks=banks),
             cache=cache).run(simulate_tls=False)
    return time.perf_counter() - start


def _time_analysis_sweep() -> Dict:
    """Figure 11 replay under ``ANALYSIS_SWEEP``, legacy rows vs. the
    columnar trace engine, over one shared recorded trace."""
    w = get_workload("Huffman")
    # the sweep replays what Figure 11 replays: the pipeline-selected
    # STLs (a full profiled run decides those)
    selected = Jrpm(source=w.source(), name=w.name) \
        .run(simulate_tls=False)
    wanted = {s.loop_id for s in selected.selection.selected}

    program = compile_source(w.source())
    candidates = find_candidates(program)
    annotated = annotate_program(
        program, candidates, AnnotationLevel.OPTIMIZED)
    # one traced run records the same execution into both layouts, so
    # the comparison below isolates the analysis side entirely.  The
    # recording run is timed with the trace JIT off and on (identical
    # listener work on both sides; superblocks must publish the
    # identical event stream) and the JIT-on recordings feed the sweep
    legacy = RecordingListener()
    columnar = ColumnarRecording()
    start = time.perf_counter()
    run_program(annotated.program,
                listener=MulticastListener([RecordingListener(),
                                            ColumnarRecording()]),
                trace_jit=False)
    record_off_s = time.perf_counter() - start
    start = time.perf_counter()
    run_program(annotated.program,
                listener=MulticastListener([legacy, columnar]),
                trace_jit=True)
    record_on_s = time.perf_counter() - start

    # ...restricted to the loops this trace can be windowed on
    loops = []
    for lid in sorted(wanted):
        try:
            if split_trace(columnar, lid):
                loops.append(lid)
        except SimulationError:
            continue

    # before: the pre-change row path — every (config, loop) pair
    # rebuilds the cycle index and windows, reclassifies every event,
    # and recomputes overflow points from scratch
    start = time.perf_counter()
    for config in ANALYSIS_SWEEP:
        for lid in loops:
            legacy._cycle_index = None
            comp = compile_stl(candidates.by_id[lid], config)
            simulate_stl(comp, split_trace(legacy, lid), config)
    rows_s = time.perf_counter() - start

    # after: the columnar engine — splits are built once per loop and
    # the classification/overflow kernels are shared across the sweep
    engine = TraceEngine(columnar)
    start = time.perf_counter()
    for config in ANALYSIS_SWEEP:
        for lid in loops:
            comp = compile_stl(candidates.by_id[lid], config)
            engine.simulate(comp, config)
    engine_s = time.perf_counter() - start

    return {
        "configs": len(ANALYSIS_SWEEP),
        "loops": len(loops),
        "events": len(columnar),
        "record_off_s": round(record_off_s, 3),
        "record_on_s": round(record_on_s, 3),
        "record_speedup": round(record_off_s / record_on_s, 2),
        "legacy_rows_s": round(rows_s, 3),
        "engine_s": round(engine_s, 3),
        "speedup": round(rows_s / engine_s, 2),
        "engine_stats": engine.stats.snapshot(),
    }


def _time_fleet(workloads, jobs: int, cache=None) -> float:
    start = time.perf_counter()
    run_fleet(workloads, simulate_tls=True, jobs=jobs, cache=cache)
    return time.perf_counter() - start


def run_benchmark(quick: bool = False) -> Dict:
    fleet = all_workloads()
    if quick:
        fleet = fleet[:4]

    single = _time_single_run()
    trace_jit = _time_trace_jit_single(reps=1 if quick else 5)
    optimize = _time_optimize_single(reps=3 if quick else 7)
    optimize["recording"] = _time_optimize_recording()
    # cold fills the cache (including the store overhead of pickling
    # every artifact); warm is the same sweep against the filled cache,
    # i.e. what any re-run or downstream-knob sweep pays
    cache = ArtifactCache()
    sweep_cold = _time_sweep(cache=cache)
    sweep_cached = _time_sweep(cache=cache)

    analysis = _time_analysis_sweep()

    serial = _time_fleet(fleet, jobs=1)
    with_pool = _time_fleet(fleet, jobs=4)

    results = {
        "benchmark": "bench_perf_pipeline",
        "quick": quick,
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "before": BASELINE,
        "after": {
            "single_run_s": round(single, 3),
            "cached_sweep_cold_s": round(sweep_cold, 3),
            "cached_sweep_s": round(sweep_cached, 3),
            "parallel_fleet_serial_s": round(serial, 3),
            "parallel_fleet_s": round(with_pool, 3),
            "analysis_sweep_rows_s": analysis["legacy_rows_s"],
            "analysis_sweep_s": analysis["engine_s"],
        },
        "analysis": analysis,
        "trace_jit": trace_jit,
        "optimize": optimize,
        "speedup": {
            "analysis_sweep": analysis["speedup"],
            "trace_jit_single_run": trace_jit["speedup"],
            "trace_jit_record": analysis["record_speedup"],
            "optimize_single_run": optimize["speedup"],
            "optimize_events_removed":
                optimize["recording"]["events_removed"],
            "single_run": round(BASELINE["single_run_s"] / single, 2),
            "cached_sweep": round(
                BASELINE["cached_sweep_s"] / sweep_cached, 2),
            "cached_sweep_vs_cold": round(sweep_cold / sweep_cached, 2),
            "parallel_fleet": round(
                BASELINE["parallel_fleet_s"] / with_pool, 2),
            "parallel_fleet_vs_serial": round(serial / with_pool, 2),
        },
        "notes": (
            "before = commit 5621cd4 on this host; quick runs shrink "
            "the fleet, so only full runs are comparable to 'before'. "
            "parallel_fleet gains require multiple host cores."),
    }
    return results


def test_perf_pipeline_quick(capsys):
    """CI smoke: the harness runs end to end and the software layers
    beat their own cold paths (host-independent assertions only)."""
    results = run_benchmark(quick=True)
    with capsys.disabled():
        print()
        print(json.dumps(results["speedup"], indent=2))
    # the warm sweep only unpickles artifacts: it must beat the cold
    # sweep comfortably even on a noisy shared host
    assert results["speedup"]["cached_sweep_vs_cold"] > 2.0
    # the columnar engine memoizes its kernels across the config sweep:
    # both paths are timed in the same process on the same trace, so
    # the ratio is host-independent (issue target: >= 3x)
    assert results["speedup"]["analysis_sweep"] > 3.0
    stats = results["analysis"]["engine_stats"]
    assert stats["classify"]["hits"] > 0
    assert stats["overflow"]["hits"] > 0
    # the superblock path must never be slower than plain dispatch on
    # Huffman — both flags run the identical pipeline in-process, so
    # this ratio is host-independent too
    assert results["speedup"]["trace_jit_single_run"] > 1.0
    jit = results["trace_jit"]["jit"]
    assert jit["sequential"]["traces_linked"] > 0
    assert jit["profiled"]["traces_linked"] > 0
    assert jit["profiled"]["invocations"] > 0
    # optimizer gate: on the Figure 11 recording run the optimized
    # program commits strictly fewer interpreter events (LICM removed
    # invariant header work) — a deterministic, host-independent count
    opt = results["optimize"]
    assert opt["recording"]["events_on"] < opt["recording"]["events_off"]
    assert opt["stats"]["licm_hoisted"] > 0
    # the optimized program never executes more work...
    assert opt["sequential_cycles_on"] <= opt["sequential_cycles_off"]
    # ...and must not regress the warm single run, where compilation
    # is cached and only the execution/analysis side is measured
    # (loose bound: warm runs are short and hosts are noisy)
    assert opt["speedup"] > 0.9
    # and everything above must have produced sane timings
    assert all(v > 0 for v in results["after"].values())


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    results = run_benchmark(quick=quick)
    print(json.dumps(results, indent=2))
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_pipeline.json")
    with open(out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % out, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
