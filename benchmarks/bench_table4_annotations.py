"""Table 4 — annotating instructions and their trace operations.

Prints the annotation ISA with the static/dynamic counts observed on a
real workload, and times the annotation pass itself.
"""

from collections import Counter

from repro.bytecode import Op
from repro.cfg import find_candidates
from repro.jit import AnnotationLevel, annotate_program
from repro.workloads import get_workload

from benchmarks.conftest import banner

SEMANTICS = {
    Op.SLOOP: ("Start loop", "Allocate comparator bank; set thread "
                             "start timestamp; reserve n local slots"),
    Op.EOI: ("Loop end-of-iteration", "Shift thread start timestamps; "
                                      "start next thread"),
    Op.ELOOP: ("End loop", "Free comparator bank and local slots"),
    Op.LWL: ("Local variable load", "Get store timestamp for local vn"),
    Op.SWL: ("Local variable store", "Record store timestamp for vn"),
    Op.READSTATS: ("Read statistics", "Drain comparator-bank counters"),
}


def test_table4_annotation_instructions(benchmark):
    workload = get_workload("Huffman")
    program = workload.compile()
    table = find_candidates(program)

    ann = benchmark(annotate_program, program, table,
                    AnnotationLevel.OPTIMIZED)

    static = Counter()
    for fn in ann.program.functions.values():
        for ins in fn.code:
            if ins.op in SEMANTICS:
                static[ins.op] += 1

    print(banner("Table 4 - Annotating instructions "
                 "(static sites in Huffman)"))
    print("%-12s %-22s %6s   %s" % ("Instruction", "Description",
                                    "Sites", "Trace operation"))
    for op, (desc, trace_op) in SEMANTICS.items():
        print("%-12s %-22s %6d   %s" % (op.name.lower(), desc,
                                        static[op], trace_op))

    # every annotated loop has sloop/eloop sites and a readstats site
    assert static[Op.SLOOP] >= len(ann.annotated_loops)
    assert static[Op.READSTATS] >= len(ann.annotated_loops)
    assert static[Op.LWL] > 0 and static[Op.SWL] > 0
