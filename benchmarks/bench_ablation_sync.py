"""Ablation — synchronization insertion (Section 6.3 optimization).

The dependency statistics "direct the compiler to variables where ...
synchronization can be inserted to minimize violations".  This bench
re-simulates the violating selected STLs of NumHeapSort and BitOps
with synchronization enabled and compares violation counts and times.
"""

from repro.cfg import find_candidates
from repro.jit import annotate_program, compile_stl
from repro.runtime import RecordingListener, run_program
from repro.tls import simulate_stl, split_trace
from repro.workloads import get_workload

from benchmarks.conftest import banner


def violating_stl(name):
    """(candidate, entries) of the workload's most violating STL."""
    w = get_workload(name)
    program = w.compile()
    table = find_candidates(program)
    ann = annotate_program(program, table)
    rec = RecordingListener()
    run_program(ann.program, listener=rec)

    worst = None
    for cand in table.candidates():
        entries = split_trace(rec, cand.loop_id)
        if not entries or sum(len(e.threads) for e in entries) < 8:
            continue
        res = simulate_stl(compile_stl(cand), entries)
        if worst is None or res.violations > worst[2].violations:
            worst = (cand, entries, res)
    return worst


def test_ablation_synchronization(benchmark):
    print(banner("Ablation - synchronization insertion (Sec. 6.3)"))
    print("%-14s %6s | %10s %9s | %10s %9s" % (
        "Benchmark", "loop", "violations", "speedup",
        "sync viol.", "speedup"))

    results = {}
    for name in ("NumHeapSort", "BitOps"):
        cand, entries, plain = violating_stl(name)
        synced = simulate_stl(
            compile_stl(cand, synchronize_heap=True), entries)
        results[name] = (plain, synced)
        print("%-14s L%-5d | %10d %8.2fx | %10d %8.2fx" % (
            name, cand.loop_id, plain.violations, plain.speedup,
            synced.violations, synced.speedup))

    for name, (plain, synced) in results.items():
        # synchronization eliminates violations entirely...
        assert synced.violations == 0, name
        # ...without ever running slower than the violating schedule
        # by more than the communication stalls it introduces
        assert synced.parallel_cycles \
            <= plain.parallel_cycles * 1.25, name

    # at least one of the two actually had violations to remove
    assert any(plain.violations > 0
               for plain, _ in results.values())

    benchmark.pedantic(violating_stl, args=("NumHeapSort",),
                       rounds=1, iterations=1)
