"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The
expensive part — running the full Jrpm pipeline over the 26 workloads —
is done once per session and shared; each bench then prints its
table/figure from the cached reports and times a representative kernel
with pytest-benchmark.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.jrpm import Jrpm, JrpmReport
from repro.workloads import all_workloads


@pytest.fixture(scope="session")
def fleet_reports() -> Dict[str, JrpmReport]:
    """Full pipeline reports for all 26 workloads (Table 6 order)."""
    reports: Dict[str, JrpmReport] = {}
    for w in all_workloads():
        reports[w.name] = Jrpm(source=w.source(), name=w.name).run()
    return reports


@pytest.fixture(scope="session")
def huffman_workload_report() -> JrpmReport:
    """Pipeline report for the paper's running example workload."""
    from repro.workloads import get_workload
    w = get_workload("Huffman")
    return Jrpm(source=w.source(), name=w.name).run()


def banner(title: str) -> str:
    bar = "=" * max(8, len(title))
    return "\n%s\n%s\n%s" % (bar, title, bar)
