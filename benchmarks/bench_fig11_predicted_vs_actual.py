"""Figure 11 — estimated versus actual (TLS-simulated) speedup.

For every workload, prints the two normalized-execution-time bars of
the figure.  Shape targets: prediction tracks the simulation for most
benchmarks, with the large disparities concentrated where the paper
saw them — STLs with highly varying thread sizes and real violation
rates.
"""

import math

from repro.workloads import all_workloads

from benchmarks.conftest import banner


def test_fig11_predicted_vs_actual(benchmark, fleet_reports):
    print(banner("Figure 11 - Estimated vs actual normalized "
                 "execution time (1.0 = sequential)"))
    print("%-14s %10s %10s %8s %12s" % (
        "Benchmark", "predicted", "actual", "ratio", "viol/thread"))

    rows = []
    for w in all_workloads():
        rep = fleet_reports[w.name]
        out = rep.outcome
        pred = out.predicted_normalized_time
        act = out.actual_normalized_time
        vpt = (out.total_violations / max(1, sum(
            r.threads for r in out.results.values())))
        rows.append((w.name, pred, act, vpt))
        print("%-14s %10.3f %10.3f %8.2f %12.4f" % (
            w.name, pred, act, act / pred if pred else float("nan"),
            vpt))

    # prediction quality: most benchmarks within 35% of the simulated
    # time; geometric-mean ratio near 1
    ratios = [act / pred for _, pred, act, _ in rows]
    close = [r for r in ratios if 0.65 < r < 1.55]
    assert len(close) >= len(rows) - 4, sorted(ratios)

    log_gmean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    assert 0.8 < log_gmean < 1.25, log_gmean

    # both series always within [something-positive, ~1]
    for name, pred, act, _ in rows:
        assert 0.2 < pred <= 1.0 + 1e-9, name
        assert 0.2 < act <= 1.6, name

    # time the whole-program aggregation
    rep = fleet_reports["Huffman"]
    benchmark(lambda: rep.outcome.actual_speedup)
