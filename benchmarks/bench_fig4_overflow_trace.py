"""Figure 4 — the speculative-state overflow analysis worked example.

Replays a scripted LD/ST sequence in the shape of the figure's columns
and prints, per access, the figure's derived columns: timestamp hit,
in-current-thread?, and the running load/store line counters.
"""

from repro.hydra import HydraConfig
from repro.runtime.heap import line_of
from repro.tracer import ComparatorBank, TestDevice
from repro.tracer.stats import STLStats

from benchmarks.conftest import banner

# the figure's access trace (op, address); "New thread" rows are eoi
TRACE = [
    ("NEW", 0),
    ("LD", 0x20000),
    ("ST", 0x10040),
    ("LD", 0x20008),
    ("LD", 0x20040),
    ("NEW", 0),
    ("LD", 0x20000),
    ("LD", 0x10040),
    ("ST", 0x10040),
    ("ST", 0x10048),
    ("LD", 0x20000),
]


def test_fig4_overflow_analysis(benchmark):
    config = HydraConfig()
    dev = TestDevice(config)

    print(banner("Figure 4 - Speculative state overflow analysis"))
    print("%-4s %-9s %-6s %8s %8s %9s" % (
        "op", "address", "line", "LD-count", "ST-count", "overflow?"))

    dev.on_sloop(0, 0, 0)
    cycle = 5
    bank = dev._stack[-1].bank
    for op, addr in TRACE:
        if op == "NEW":
            if cycle > 5:
                dev.on_eoi(0, cycle)
            print("---- new thread ----")
        elif op == "LD":
            dev.on_load(addr, cycle)
            print("%-4s 0x%07x %-6d %8d %8d %9s" % (
                op, addr, line_of(addr), bank.load_lines,
                bank.store_lines, "no"))
        else:
            dev.on_store(addr, cycle)
            print("%-4s 0x%07x %-6d %8d %8d %9s" % (
                op, addr, line_of(addr), bank.load_lines,
                bank.store_lines, "no"))
        cycle += 5
    dev.on_eoi(0, cycle)
    dev.on_eloop(0, cycle + 1)
    dev.finish()

    stats = dev.stats[0]
    # thread 1 touches 2 distinct load lines (0x20000 and 0x20008
    # share one) + 1 store line; thread 2 touches 2 load lines and 1
    # store line (0x10040 and 0x10048 share a line)
    assert stats.load_lines_total == 2 + 2
    assert stats.store_lines_total == 1 + 1
    assert stats.overflow_threads == 0

    # with limits of two lines, thread 1's third load line overflows
    def tiny_limit_kernel():
        cfg = HydraConfig(load_buffer_lines=2, load_buffer_assoc=2)
        st = STLStats(0)
        bank = ComparatorBank(cfg, st)
        bank.start_entry(0)
        for i in range(3):
            bank.observe_line_load(None)
        bank.end_iteration(100)
        bank.end_entry(101)
        return st.overflow_threads

    assert benchmark(tiny_limit_kernel) == 1
