"""Table 2 — thread-level speculation overheads.

Prints the Table 2 overhead schedule and times the Equation 1
estimator that consumes it.
"""

from repro.hydra import DEFAULT_HYDRA
from repro.tracer import estimate_speedup
from repro.tracer.stats import STLStats

from benchmarks.conftest import banner


def test_table2_overheads(benchmark):
    cfg = DEFAULT_HYDRA
    print(banner("Table 2 - Thread-level speculation overheads"))
    print("%-26s %10s   %s" % ("TLS Operation", "Overhead", "Notes"))
    for name, cycles, note in cfg.overheads_table():
        print("%-26s %7d cy   %s" % (name, cycles, note[:46]))

    assert cfg.startup_overhead == 25
    assert cfg.eoi_overhead == 5

    stats = STLStats(0)
    stats.cycles = 500_000
    stats.threads = 2_000
    stats.entries = 10
    stats.profiled_threads = 2_000
    stats.profiled_entries = 10
    stats.arcs_prev = 900
    stats.arc_len_prev = 900 * 120

    est = benchmark(estimate_speedup, stats, cfg)
    assert 1.0 <= est.speedup <= 4.0
