"""Section 6.3 — dependency profiles guide optimization.

Runs the extended TEST implementation (per-load-PC critical-arc
binning, Figure 8b) on the benchmarks the paper says it helped tune —
Huffman, NumHeapSort, db, MipsSimulator — and prints each program's
hottest dependency-carrying load sites.
"""

from repro.jrpm import Jrpm
from repro.workloads import get_workload

from benchmarks.conftest import banner

TUNED = ["Huffman", "NumHeapSort", "db", "MipsSimulator"]


def extended_report(name):
    w = get_workload(name)
    return Jrpm(source=w.source(), name=name, extended=True,
                convergence_threshold=None).run(simulate_tls=False)


def test_sec63_dependency_guidance(benchmark):
    print(banner("Section 6.3 - Per-PC dependency profiles "
                 "(extended TEST)"))
    for name in TUNED:
        rep = extended_report(name)
        dev = rep.device
        print("\n--- %s ---" % name)
        # report the most-covered selected loop's profile
        top = rep.selection.significant()[:1]
        assert top, name
        lid = top[0].loop_id
        print(dev.report(lid, limit=5))

        # the guidance property: for loops with arcs, the profile names
        # concrete load sites whose arcs explain the accumulated stats
        stats = dev.stats[lid]
        profile = dev.profile_for(lid)
        if stats.arcs_prev:
            binned = sum(b.count for (f, p, kind), b
                         in profile.bins.items() if kind == "prev")
            assert binned == stats.arcs_prev, name
            # and each hot site names a real location
            for site in profile.hottest(3):
                assert site.fn
                assert site.pc >= 0

    benchmark.pedantic(extended_report, args=("Huffman",), rounds=1,
                       iterations=1)
