"""Ablations over the TEST hardware parameters DESIGN.md calls out.

* comparator-bank count: how many loops of a deep nest get analyzed;
* heap store-timestamp FIFO depth: missed dependencies when history is
  short (the Section 6.2 imprecision knob);
* convergence threshold: profiling cost vs statistics freshness.
"""

from repro.hydra import HydraConfig
from repro.jrpm import ArtifactCache, Jrpm
from repro.workloads import get_workload

from benchmarks.conftest import banner

#: shared across the sweeps below: each ablation varies one hardware
#: knob, so the compile/annotate/sequential stages hit the cache and
#: only the profiled run (whose key includes the knob) re-executes
_CACHE = ArtifactCache()

DEEP_NEST = """
func main() {
  var a = array(256);
  var s = 0;
  for (var i = 0; i < 4; i = i + 1) {
    for (var j = 0; j < 4; j = j + 1) {
      for (var k = 0; k < 4; k = k + 1) {
        for (var l = 0; l < 4; l = l + 1) {
          for (var m = 0; m < 4; m = m + 1) {
            s = s + a[(i * 81 + j * 27 + k * 9 + l * 3 + m) % 256];
          }
        }
      }
    }
  }
  return s;
}
"""


def test_ablation_bank_count(benchmark):
    print(banner("Ablation - comparator bank count on a 5-deep nest"))
    print("%-8s %18s %18s" % ("banks", "loops profiled",
                              "unbanked activations"))
    profiled = {}
    for banks in (1, 2, 3, 8):
        config = HydraConfig(n_comparator_banks=banks)
        rep = Jrpm(source=DEEP_NEST, name="nest", config=config,
                   convergence_threshold=None,
                   cache=_CACHE).run(simulate_tls=False)
        got = sum(1 for st in rep.device.stats.values()
                  if st.profiled_threads > 0)
        profiled[banks] = got
        print("%-8d %18d %18d" % (banks, got,
                                  rep.device.n_unbanked_activations))

    # more banks -> more of the nest analyzed; 8 banks covers all 5
    assert profiled[1] < profiled[3] <= profiled[8]
    assert profiled[8] == 5
    assert profiled[1] == 1

    benchmark.pedantic(
        lambda: Jrpm(source=DEEP_NEST,
                     config=HydraConfig(n_comparator_banks=8),
                     cache=_CACHE).run(simulate_tls=False),
        rounds=1, iterations=1)


def test_ablation_fifo_depth(benchmark):
    """A shallow store-timestamp FIFO forgets producers and misses
    arcs — TEST then overestimates the dependent loop."""
    print(banner("Ablation - heap store-timestamp FIFO depth "
                 "(Huffman decode)"))
    w = get_workload("NumHeapSort")
    print("%-12s %14s %16s" % ("FIFO lines", "arcs found",
                               "FIFO evictions"))
    arcs = {}
    for lines in (2, 16, 192):
        config = HydraConfig(heap_ts_fifo_lines=lines)
        rep = Jrpm(source=w.source(), name=w.name, config=config,
                   convergence_threshold=None,
                   cache=_CACHE).run(simulate_tls=False)
        total_arcs = sum(st.arcs_prev + st.arcs_earlier
                         for st in rep.device.stats.values())
        arcs[lines] = total_arcs
        print("%-12d %14d %16d" % (lines, total_arcs,
                                   rep.device.heap_ts.evictions))

    assert arcs[2] < arcs[192]
    assert arcs[16] <= arcs[192]

    benchmark.pedantic(lambda: arcs, rounds=1, iterations=1)


def test_ablation_convergence_threshold(benchmark):
    """Earlier convergence cuts profiling cost; the sampled
    re-profiling keeps the selection stable."""
    print(banner("Ablation - convergence threshold (BitOps)"))
    w = get_workload("BitOps")
    print("%-12s %12s %14s %12s" % ("threshold", "slowdown",
                                    "selected", "pred speedup"))
    rows = {}
    for threshold in (None, 10_000, 1000, 200):
        rep = Jrpm(source=w.source(), name=w.name,
                   convergence_threshold=threshold,
                   cache=_CACHE).run(simulate_tls=False)
        rows[threshold] = rep
        print("%-12s %11.1f%% %14s %11.2fx" % (
            threshold, 100 * (rep.profiling_slowdown - 1),
            rep.selection.selected_ids(), rep.predicted_speedup))

    # disabling converged analysis never makes profiling slower
    assert rows[200].profiling_slowdown \
        <= rows[None].profiling_slowdown + 1e-9
    # and the chosen decomposition is stable across thresholds
    baseline = set(rows[None].selection.selected_ids())
    assert set(rows[1000].selection.selected_ids()) == baseline

    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
