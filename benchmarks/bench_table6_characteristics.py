"""Table 6 — benchmark characteristics and TEST analysis.

Regenerates the paper's headline table over the 26 workloads: static
columns (analyzable, data-set sensitive, loop count), dynamic columns
(executed loop depth, selected loops with > 0.5% coverage, average
selected-loop height, threads per entry, thread size).

Shape targets checked: coarse threads for MipsSimulator / raytrace /
IDEA / EmFloatPnt / FourierTest, fine threads for moldyn / NeuralNet,
and selected heights above the innermost level on average.
"""

from repro.workloads import all_workloads, get_workload

from benchmarks.conftest import banner


def _row(name, report):
    w = get_workload(name)
    table = report.candidates
    sel = report.selection
    significant = sel.significant()
    heights, sizes, tpe, weights = [], [], [], []
    for s in significant:
        cand = table.by_id.get(s.loop_id)
        if cand is None:
            continue
        heights.append(cand.loop.height1())
        sizes.append(s.stats.avg_thread_size)
        tpe.append(s.stats.avg_iters_per_entry)
        weights.append(s.stats.cycles)
    total_w = sum(weights) or 1

    def wavg(vals):
        return sum(v * w for v, w in zip(vals, weights)) / total_w \
            if vals else 0.0

    return {
        "name": name,
        "dataset": w.dataset,
        "analyzable": "Y" if w.analyzable else "N",
        "sensitive": "Y" if w.data_sensitive else "N",
        "loops": table.loop_count,
        "depth": report.device.max_dynamic_depth(),
        "selected": len(significant),
        "height": sum(heights) / len(heights) if heights else 0.0,
        "threads_per_entry": wavg(tpe),
        "size": wavg(sizes),
    }


def test_table6_benchmark_characteristics(benchmark, fleet_reports):
    rows = [_row(name, rep) for name, rep in fleet_reports.items()]

    print(banner("Table 6 - Benchmarks evaluated with STLs "
                 "selected by TEST"))
    print("%-14s %-9s %2s %2s %5s %5s %4s %6s %10s %9s" % (
        "Benchmark", "Dataset", "An", "DS", "Loops", "Depth", "Sel",
        "Height", "Thr/entry", "Size(cy)"))
    for r in rows:
        print("%-14s %-9s %2s %2s %5d %5d %4d %6.1f %10.0f %9.0f" % (
            r["name"], r["dataset"], r["analyzable"], r["sensitive"],
            r["loops"], r["depth"], r["selected"], r["height"],
            r["threads_per_entry"], r["size"]))

    by_name = {r["name"]: r for r in rows}

    # granularity diversity (the paper's central observation): the
    # named coarse benchmarks dwarf the named fine ones
    coarse = ["MipsSimulator", "IDEA", "EmFloatPnt", "FourierTest"]
    fine = ["moldyn", "NeuralNet"]
    coarse_min = min(by_name[n]["size"] for n in coarse)
    fine_max = max(by_name[n]["size"] for n in fine)
    assert coarse_min > 3 * fine_max, (coarse_min, fine_max)

    # every workload profiles at least two loops and selects at least 1
    for r in rows:
        assert r["loops"] >= 2
        assert r["selected"] >= 1

    # selected heights average above the innermost loop somewhere
    # (desired STLs are larger than the inner-most loop, Section 6.1)
    assert any(r["height"] > 1.0 for r in rows)

    # deep nests exist but 8 comparator banks suffice for most programs
    assert max(r["depth"] for r in rows) >= 4

    # timing: regenerating one row (full pipeline) on a small workload
    from repro.jrpm import Jrpm
    w = get_workload("monteCarlo")
    benchmark.pedantic(
        lambda: Jrpm(source=w.source(), name=w.name).run(),
        rounds=1, iterations=1)
