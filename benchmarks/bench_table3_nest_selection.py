"""Table 3 — applying Equation 2 to the Huffman decode nest.

Regenerates the paper's comparison: speculating on the outer
(per-symbol) loop vs. delegating to the inner (bit-chasing) loop plus
serial execution.  The shape target: the outer loop wins.
"""

from repro.tracer import select_stls

from benchmarks.conftest import banner


def test_table3_huffman_nest(benchmark, huffman_workload_report):
    rep = huffman_workload_report
    sel = rep.selection
    table = rep.candidates

    # the decode nest: the candidate with a nested child
    outer = [c for c in table.candidates() if c.child_ids][0]
    inner_id = outer.child_ids[0]
    d_outer = sel.decisions[outer.loop_id]
    d_inner = sel.decisions[inner_id]

    serial_inside_outer = d_outer.stats.cycles - d_inner.stats.cycles
    outer_time = d_outer.time_if_speculated
    inner_plus_serial = d_inner.time_if_speculated + serial_inside_outer

    print(banner("Table 3 - Equation 2 on the Huffman decode nest"))
    print("%-24s %14s %14s %14s" % ("", "Outer loop", "Inner loop",
                                    "Serial"))
    print("%-24s %13dK %13dK %13dK" % (
        "Sequential time (cycles)",
        d_outer.stats.cycles // 1000,
        d_inner.stats.cycles // 1000,
        serial_inside_outer // 1000))
    print("%-24s %14.2f %14.2f %14.2f" % (
        "Speedup", d_outer.estimate.speedup, d_inner.estimate.speedup,
        1.0))
    print("%-24s %13dK %13dK" % (
        "TLS time (cycles)", int(outer_time) // 1000,
        int(d_inner.time_if_speculated) // 1000))
    print("%-24s %13dK %s %13dK" % (
        "Total time (cycles)", int(outer_time) // 1000,
        "<" if outer_time < inner_plus_serial else ">=",
        int(inner_plus_serial) // 1000))

    # the paper's conclusion: the outer loop is the better STL
    assert outer_time < inner_plus_serial
    assert outer.loop_id in sel.selected_ids()
    assert inner_id not in sel.selected_ids()

    # time the selection pass itself (Equation 2 over all loops)
    benchmark.pedantic(
        select_stls, args=(rep.device, rep.profiled.cycles),
        rounds=20, iterations=1)
