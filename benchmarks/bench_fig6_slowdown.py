"""Figure 6 — execution slowdown during profiling.

For every workload, measures the slowdown of the annotated run at both
annotation levels and prints the stacked components (Read Counters /
Locals / Annotations).  Shape targets: optimized < base everywhere,
most benchmarks within ~10-25%, overall band comparable to the paper's
3-25%.
"""

import statistics

from repro.jit import AnnotationLevel
from repro.jrpm import Jrpm
from repro.workloads import all_workloads, get_workload

from benchmarks.conftest import banner


def test_fig6_profiling_slowdown(benchmark, fleet_reports):
    print(banner("Figure 6 - Execution slowdown during profiling "
                 "(base | optimized annotations)"))
    print("%-14s | %28s | %40s" % (
        "Benchmark", "base: total",
        "optimized: total (read+locals+markers)"))

    rows = []
    for w in all_workloads():
        jrpm = Jrpm(source=w.source(), name=w.name)
        base = jrpm.measure_slowdown(AnnotationLevel.BASE)
        opt = fleet_reports[w.name].slowdown
        rows.append((w.name, base, opt))
        print("%-14s | %20.1f%% | %12.1f%%  (%4.1f%% + %4.1f%% + %4.1f%%)"
              % (w.name,
                 100 * (base.slowdown - 1),
                 100 * (opt.slowdown - 1),
                 100 * opt.read_counters_frac,
                 100 * opt.locals_frac,
                 100 * opt.annotations_frac))

    opt_slows = [100 * (opt.slowdown - 1) for _, _, opt in rows]
    print("\noptimized slowdown: min %.1f%%  median %.1f%%  max %.1f%%"
          % (min(opt_slows), statistics.median(opt_slows),
             max(opt_slows)))

    # optimized annotations beat base annotations on every benchmark
    for name, base, opt in rows:
        assert opt.slowdown <= base.slowdown + 1e-9, name
        assert opt.slowdown > 1.0, name

    # the band: paper reports 3-25%; allow bounded overshoot for the
    # few pathologically tight integer kernels
    assert statistics.median(opt_slows) < 25.0
    assert max(opt_slows) < 45.0
    assert sum(1 for s in opt_slows if s <= 25.0) >= 20

    # time one slowdown measurement end to end
    w = get_workload("IDEA")
    benchmark.pedantic(
        lambda: Jrpm(source=w.source()).measure_slowdown(
            AnnotationLevel.OPTIMIZED),
        rounds=1, iterations=1)
