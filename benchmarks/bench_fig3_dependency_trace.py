"""Figure 3 — the load dependency analysis worked example.

Drives the TEST device with the figure's exact event timeline and
prints the accumulated-statistics table (the figure's bottom panel),
then times the device's event path (the per-access hot loop of the
hardware model).
"""

from repro.tracer import TestDevice

from benchmarks.conftest import banner


def drive_figure3():
    dev = TestDevice()
    dev.register_loop_locals(0, [1, 2])     # 1 = in_p, 2 = out_p
    dev.on_sloop(0, 2, 0, frame_id=0)
    dev.on_local_store(0, 1, 8)
    dev.on_local_store(0, 2, 11)
    dev.on_eoi(0, 12)
    dev.on_local_load(0, 1, 16)             # in_p arc: 8
    dev.on_local_load(0, 2, 20)             # out_p arc: 9 (not critical)
    dev.on_local_store(0, 1, 19)
    dev.on_local_store(0, 2, 22)
    dev.on_eoi(0, 23)
    dev.on_local_load(0, 1, 27)             # in_p arc: 8
    dev.on_eoi(0, 35)
    dev.on_eloop(0, 35)
    dev.finish()
    return dev.stats[0]


def test_fig3_load_dependency_analysis(benchmark):
    stats = drive_figure3()

    print(banner("Figure 3 - Load dependency analysis "
                 "(accumulated statistics after thread 3)"))
    print(stats.render())

    # the figure's values: 2 critical arcs to t-1, both length 8, no
    # arcs to earlier threads, 3 threads in 1 entry
    assert stats.threads == 3
    assert stats.entries == 1
    assert stats.arcs_prev == 2
    assert stats.avg_arc_len_prev == 8.0
    assert stats.arcs_earlier == 0
    assert stats.arc_freq_prev == 1.0

    # time the dependency-analysis event path under load
    def event_kernel():
        dev = TestDevice()
        dev.on_sloop(0, 0, 0)
        cycle = 1
        for i in range(2000):
            addr = 0x1000 + (i % 64) * 4
            dev.on_store(addr, cycle)
            cycle += 3
            dev.on_load(addr, cycle)
            cycle += 3
            if i % 16 == 15:
                dev.on_eoi(0, cycle)
        dev.on_eloop(0, cycle)
        return dev.stats[0].threads

    threads = benchmark(event_kernel)
    assert threads == 125
