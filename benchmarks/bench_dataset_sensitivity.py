"""Table 6 column (b) — data-set-sensitive decomposition selection.

Section 6.1: "loops lower in a loop nest must be chosen with larger
data sets because the number of inner loop iterations will rise,
increasing the probability of overflowing speculative state when
speculating higher in a loop nest."

This bench runs one 2-D traversal at three data sizes on the *same*
hardware and shows the selected level of the nest dropping as the rows
outgrow the store buffer.
"""

from repro.jrpm import ArtifactCache, Jrpm

from benchmarks.conftest import banner

#: the three data sets are distinct programs (different constants), so
#: this cache mainly serves the benchmark.pedantic re-run, which hits
#: every stage
_CACHE = ArtifactCache()

# each outer iteration writes one row of `cols` words; at 32 B lines
# the row costs cols/8 store-buffer lines (limit: 64)
SOURCE_TEMPLATE = """
func main() {
  var rows = %d;
  var cols = %d;
  var grid = array(rows * cols);
  var check = 0;
  for (var r = 0; r < rows; r = r + 1) {
    for (var c = 0; c < cols; c = c + 1) {
      grid[r * cols + c] = (r * 31 + c * 7) %% 65536;
    }
  }
  for (var k = 0; k < rows * cols; k = k + 1) {
    check = (check + grid[k]) %% 1000003;
  }
  return check;
}
"""

#: (label, rows, cols): cols/8 store lines per outer iteration
DATASETS = [
    ("small  (rows of 16 lines)", 96, 128),
    ("medium (rows of 48 lines)", 40, 384),
    ("large  (rows of 96 lines)", 24, 768),
]


def fill_nest_depth(rows, cols):
    rep = Jrpm(source=SOURCE_TEMPLATE % (rows, cols),
               name="grid-%dx%d" % (rows, cols),
               cache=_CACHE).run(simulate_tls=False)
    table = rep.candidates
    main_stl = max(rep.selection.significant(),
                   key=lambda s: s.stats.cycles)
    return (table.by_id[main_stl.loop_id].depth,
            main_stl.stats.avg_thread_size,
            main_stl.stats.overflow_freq, rep)


def test_dataset_sensitivity(benchmark):
    print(banner("Table 6 col (b) - selection moves down the nest "
                 "as the data set grows"))
    print("%-28s %12s %14s" % ("data set", "chosen depth",
                               "thread size"))
    depths = {}
    for label, rows, cols in DATASETS:
        depth, size, ovf, _ = fill_nest_depth(rows, cols)
        depths[label] = depth
        print("%-28s %12d %12.0fcy" % (label, depth, size))

    small = depths[DATASETS[0][0]]
    large = depths[DATASETS[-1][0]]
    # small rows fit the store buffer: speculate on the row loop;
    # large rows overflow it: selection must move to the element loop
    assert small == 1
    assert large == 2
    assert large > small

    benchmark.pedantic(fill_nest_depth, args=(24, 768), rounds=1,
                       iterations=1)
