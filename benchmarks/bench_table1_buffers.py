"""Table 1 — thread-level speculation buffer limits.

Prints the configured per-thread speculative buffer limits and times
the buffer occupancy models that enforce them in the TLS simulator.
"""

from repro.hydra import DEFAULT_HYDRA, FullyAssocBuffer, SetAssocCache

from benchmarks.conftest import banner


def test_table1_buffer_limits(benchmark):
    cfg = DEFAULT_HYDRA
    print(banner("Table 1 - Thread-level speculation buffer limits"))
    print("%-14s %-26s %-14s" % ("Buffer", "Per-thread limit",
                                 "Associativity"))
    for name, limit, assoc in cfg.buffer_limits_table():
        print("%-14s %-26s %-14s" % (name, limit, assoc))

    # paper values, exactly
    assert cfg.load_buffer_bytes == 16 * 1024
    assert cfg.store_buffer_bytes == 2 * 1024

    def occupancy_kernel():
        cache = SetAssocCache(cfg.load_buffer_lines,
                              cfg.load_buffer_assoc)
        buf = FullyAssocBuffer(cfg.store_buffer_lines)
        overflows = 0
        for line in range(2048):
            if cache.touch(line * 7 % 1024):
                overflows += 1
            if buf.touch(line % 96):
                overflows += 1
        return overflows

    result = benchmark(occupancy_kernel)
    assert result >= 0
