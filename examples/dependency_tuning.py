"""Section 6.3 workflow: use TEST's dependency profiles to tune a
program.

The paper: "the statistics quickly identified one or two critical
dependencies that could be restructured or removed to expose
parallelism to the speculation hardware" (NumericSort, Huffman, db,
MipsSimulator were tuned this way).

This example reproduces that loop:

1. profile a kernel whose hot loop recomputes a *running average*
   every iteration — a needless loop-carried recurrence;
2. let the extended TEST implementation name the exact load site;
3. apply the fix a programmer would (accumulate a sum — a reduction
   the speculative compiler eliminates — and divide after the loop);
4. re-profile and compare predicted speedups.

Run:  python examples/dependency_tuning.py
"""

from repro.jrpm import Jrpm

BEFORE = """
func main() {
  var n = 2500;
  var data = array(n);
  for (var i = 0; i < n; i = i + 1) {
    data[i] = (i * 2654435761) % 10000;
  }
  // hot loop: the RUNNING average is recomputed every iteration --
  // a needless loop-carried recurrence (avg depends on avg)
  var avg = 0;
  for (var k = 0; k < n; k = k + 1) {
    var v = data[k] * 3 + (data[k] >> 4);
    avg = (avg * k + v) / (k + 1);
  }
  return avg;
}
"""

# the programmer's fix: accumulate a sum (a reduction the speculative
# compiler eliminates) and divide once after the loop
AFTER = """
func main() {
  var n = 2500;
  var data = array(n);
  for (var i = 0; i < n; i = i + 1) {
    data[i] = (i * 2654435761) % 10000;
  }
  var sum = 0;
  for (var k = 0; k < n; k = k + 1) {
    var v = data[k] * 3 + (data[k] >> 4);
    sum = sum + v;
  }
  return sum / n;
}
"""


def profile(source, name):
    return Jrpm(source=source, name=name, extended=True,
                convergence_threshold=None).run(simulate_tls=False)


def hot_loop(report):
    return max(report.selection.decisions.values(),
               key=lambda d: d.stats.cycles)


def main():
    before = profile(BEFORE, "before")
    dec = hot_loop(before)
    print("BEFORE: hot loop L%d predicted %.2fx "
          "(critical-arc freq %.2f, avg length %.1f of %.1f-cycle "
          "threads)"
          % (dec.loop_id, dec.estimate.speedup,
             dec.stats.arc_freq_prev, dec.stats.avg_arc_len_prev,
             dec.stats.avg_thread_size))

    print("\nTEST's dependency profile for the hot loop (Fig. 8b):")
    print(before.device.report(dec.loop_id, limit=4))
    sites = before.device.profile_for(dec.loop_id).limiting(
        dec.stats.avg_thread_size)
    if sites:
        print("\n=> limiting load site(s): %s"
              % ", ".join("%s:%d" % (s.fn, s.pc) for s in sites[:3]))
    print("   (the running-average recurrence — accumulate a sum "
          "instead)")

    after = profile(AFTER, "after")
    dec2 = hot_loop(after)
    print("\nAFTER : hot loop L%d predicted %.2fx "
          "(critical-arc freq %.2f)"
          % (dec2.loop_id, dec2.estimate.speedup,
             dec2.stats.arc_freq_prev))

    gain = dec2.estimate.speedup / dec.estimate.speedup
    print("\nRestructuring guided by the profile improved the "
          "predicted STL speedup by %.2fx." % gain)
    assert gain > 1.2, "expected the tuned loop to parallelize"


if __name__ == "__main__":
    main()
