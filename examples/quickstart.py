"""Quickstart: dynamically parallelize a sequential program.

Compiles a small minijava program, runs the full Jrpm pipeline —
candidate STL identification, TEST profiling, Equation 1/2 selection,
speculative recompilation, TLS timing simulation — and prints the
report.

Run:  python examples/quickstart.py
"""

from repro.jrpm import (
    render_predicted_vs_actual,
    render_selection,
    render_summary,
    run_pipeline,
)

SOURCE = """
// A little image-ish kernel: build a table, smooth it, reduce it.
func main() {
  var n = 48;
  var img = array(n * n);
  var out = array(n * n);

  // fill (parallel: iterations independent)
  for (var i = 0; i < n * n; i = i + 1) {
    img[i] = (i * 2654435761) % 251;
  }

  // 3-point horizontal smoothing (parallel rows)
  for (var y = 0; y < n; y = y + 1) {
    for (var x = 1; x < n - 1; x = x + 1) {
      var idx = y * n + x;
      out[idx] = (img[idx - 1] + 2 * img[idx] + img[idx + 1]) / 4;
    }
  }

  // running checksum (a reduction the compiler can transform)
  var checksum = 0;
  for (var k = 0; k < n * n; k = k + 1) {
    checksum = (checksum + out[k]) % 1000003;
  }
  return checksum;
}
"""


def main():
    report = run_pipeline(SOURCE, name="quickstart")

    print(render_summary(report))
    print()
    print("Selected speculative thread loops (STLs):")
    print(render_selection(report))
    print()
    print("Validation against the TLS timing simulator:")
    print(render_predicted_vs_actual(report))

    print()
    print("The tracer profiled %d potential STLs with a %0.1f%% "
          "slowdown and picked %d of them, predicting a %.2fx whole-"
          "program speedup (TLS simulation measured %.2fx)."
          % (len(report.device.stats),
             100 * (report.profiling_slowdown - 1),
             len(report.selection.selected),
             report.predicted_speedup,
             report.actual_speedup))


if __name__ == "__main__":
    main()
