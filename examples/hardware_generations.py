"""Dynamic re-selection across hardware generations (Section 6.1).

The paper: "larger STLs that would cause speculative buffer overflows
in our current system could be chosen during runtime by a future Hydra
design with larger speculative store buffers and L1 caches."

This example profiles one blocked-sweep workload under three Hydra
configurations — a cut-down machine, the paper's machine, and an
imagined future machine — and shows the selected decomposition moving
*up* the loop nest as the speculative buffers grow.

Run:  python examples/hardware_generations.py
"""

from repro.hydra import HydraConfig
from repro.jrpm import ArtifactCache, Jrpm

# store state per iteration: a row is 192 words (24 lines) and a block
# is 24 rows (576 lines) — each machine generation can afford a
# different level of the nest
SOURCE = """
func main() {
  var nblocks = 6;
  var rows = 24;
  var cols = 192;
  var data = array(nblocks * rows * cols);
  var checksum = 0;
  for (var b = 0; b < nblocks; b = b + 1) {
    for (var r = 0; r < rows; r = r + 1) {
      for (var c = 0; c < cols; c = c + 1) {
        var idx = (b * rows + r) * cols + c;
        data[idx] = (idx * 2654435761) % 65536;
      }
    }
  }
  for (var k = 0; k < nblocks * rows * cols; k = k + 1) {
    checksum = (checksum + data[k]) % 1000003;
  }
  return checksum;
}
"""

GENERATIONS = [
    ("cut-down Hydra", HydraConfig(store_buffer_lines=16,
                                   load_buffer_lines=128)),
    ("paper's Hydra", HydraConfig()),
    ("future Hydra", HydraConfig(store_buffer_lines=1024,
                                 load_buffer_lines=4096)),
]


def main():
    # one cache across the generations: compile/annotate/sequential
    # are machine-independent and run once; only the profiled run
    # (whose key includes the buffer sizes) repeats per generation
    cache = ArtifactCache()
    depths = {}
    for name, config in GENERATIONS:
        report = Jrpm(source=SOURCE, name=name, config=config,
                      cache=cache).run(simulate_tls=False)
        table = report.candidates
        sel = report.selection.significant()
        levels = sorted(table.by_id[s.loop_id].depth for s in sel)
        sizes = [round(s.stats.avg_thread_size) for s in sel]
        # the fill nest's choice = the biggest-coverage selected loop
        main_stl = max(sel, key=lambda s: s.stats.cycles)
        depths[name] = table.by_id[main_stl.loop_id].depth
        print("%-16s store buffer %4d lines -> fill nest at depth %d "
              "(thread size %d cy); all selected depths %s sizes %s"
              % (name, config.store_buffer_lines, depths[name],
                 round(main_stl.stats.avg_thread_size), levels, sizes))

    print()
    if depths["cut-down Hydra"] > depths["future Hydra"]:
        print("As buffers grow, selection climbs the nest: "
              "depth %d on the cut-down machine vs depth %d on the "
              "future machine — the same program, re-decided at "
              "runtime, with no recompilation of sources."
              % (depths["cut-down Hydra"], depths["future Hydra"]))
    else:
        print("Selected depths: %r" % depths)
    print("artifact cache: %d hits, %d misses"
          % (cache.hit_count, cache.miss_count))


if __name__ == "__main__":
    main()
