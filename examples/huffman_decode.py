"""The paper's running example: Huffman decode (Figures 3, Table 3).

Walks through what TEST sees on the Huffman workload:

1. the candidate STLs found in the CFG (all natural loops);
2. the accumulated per-loop statistics (the Figure 3 bottom table);
3. the Equation 2 nest comparison that picks the *outer* per-symbol
   loop over the inner bit-chasing loop (Table 3);
4. the TLS simulation confirming the choice.

Run:  python examples/huffman_decode.py
"""

from repro.jrpm import Jrpm
from repro.workloads import get_workload


def main():
    workload = get_workload("Huffman")
    report = Jrpm(source=workload.source(), name="Huffman").run()

    table = report.candidates
    print("Potential STLs (natural loops, Section 4.1):")
    for cand in table.candidates():
        scalar = cand.scalar
        print("  L%-2d depth=%d tracked_locals=%d inductors=%d "
              "reductions=%d carried=%d"
              % (cand.loop_id, cand.depth, len(cand.tracked_locals),
                 len(scalar.inductors), len(scalar.reductions),
                 len(scalar.carried)))

    # the decode nest is the loop with a nested child
    outer = [c for c in table.candidates() if c.child_ids][0]
    inner_id = outer.child_ids[0]

    print("\nAccumulated statistics — outer (per-symbol) loop L%d:"
          % outer.loop_id)
    print(report.device.stats[outer.loop_id].render())
    print("\nAccumulated statistics — inner (bit-chase) loop L%d:"
          % inner_id)
    print(report.device.stats[inner_id].render())

    sel = report.selection
    d_outer = sel.decisions[outer.loop_id]
    d_inner = sel.decisions[inner_id]
    serial = d_outer.stats.cycles - d_inner.stats.cycles
    print("\nEquation 2 (Table 3):")
    print("  speculate outer : %8.0fK cycles (%.2fx over %.0fK)"
          % (d_outer.time_if_speculated / 1000,
             d_outer.estimate.speedup, d_outer.stats.cycles / 1000))
    print("  delegate inner  : %8.0fK cycles (%.2fx over %.0fK, plus "
          "%.0fK serial)"
          % ((d_inner.time_if_speculated + serial) / 1000,
             d_inner.estimate.speedup, d_inner.stats.cycles / 1000,
             serial / 1000))
    winner = "outer" if outer.loop_id in sel.selected_ids() else "inner"
    print("  chosen          : the %s loop" % winner)

    print("\nTLS simulation of the selection:")
    for stl in sel.selected:
        res = report.tls_results.get(stl.loop_id)
        if res is None:
            continue
        print("  L%-2d predicted %.2fx  actual %.2fx  "
              "(%d violations over %d threads)"
              % (stl.loop_id, stl.estimate.speedup, res.speedup,
                 res.violations, res.threads))


if __name__ == "__main__":
    main()
